//! The DLFS I/O engine: the four-stage read pipeline (paper §III-C, Fig. 4)
//! driven by the calling I/O thread, with completions fanned out to the
//! copy-thread pool through the shared completion queue.
//!
//! * **prep** — turn the next fetch items of the epoch plan into SPDK
//!   requests with sample-cache chunks attached;
//! * **post** — submit to the per-device I/O qpair (bounded queue depth);
//! * **poll** — busy-poll the shared completion queue across all qpairs;
//! * **copy** — hand completed samples to the copy threads, which move
//!   bytes from the sample cache into the application buffer.
//!
//! Delivery follows the paper's relaxed randomization (§III-D2): "the copy
//! threads then select samples randomly from the sample cache" — each next
//! sample is drawn from a uniformly random *resident* fetch item, so a
//! slow device never head-of-line-blocks samples that already arrived from
//! other devices. The draw is seeded, so simulations stay deterministic.
//!
//! One `DlfsIo` per I/O thread (qpairs are not thread-safe, as in SPDK);
//! all `DlfsIo` handles of a node share the directory, sample cache and
//! copy pool through [`DlfsShared`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use blocksim::{
    covering_blocks, CmdStatus, DmaBuf, IoQPair, NvmeTarget, OffloadExtent, BLOCK_SIZE,
};
use fabric::{CAPSULE_BYTES, DESCRIPTOR_BYTES, RESPONSE_BYTES};
use simkit::rng::fnv1a;
use simkit::rng::SplitMix64;
use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Gauge, Histo, Registry, Snapshot};
use simkit::time::{Dur, Time};

use crate::cache::RangeKey;
use crate::config::{CacheMode, DlfsConfig};
use crate::copy::{CopyDone, CopyJob, SegList, Segment};
use crate::directory::SampleDirectory;
use crate::entry::SampleEntry;
use crate::error::{CorruptCause, DlfsError, IoFailure};
use crate::integrity::Redundancy;
use crate::layout::{encode_codec_table, encode_integrity, encode_meta, MetaRecord};
use crate::plan::{build_epoch_plan, reader_item_ranges, FetchItem, ReaderPlan};
use crate::reactor::{CompletionClock, ReactorStats};
use crate::rebuild::RebuildPlan;
use crate::request::{Completions, Delivery, ReadRequest};
use crate::zerocopy::{Pin, PinGuard, ZeroCopySample};
use crate::{cache::SampleCache, copy::CopyPool};

/// Blocks the background scrubber walks per idle reactor gap.
const SCRUB_GAP_BLOCKS: u64 = 64;

/// State shared by every I/O thread of one compute node.
pub struct DlfsShared {
    pub cfg: DlfsConfig,
    pub dir: Arc<SampleDirectory>,
    pub cache: Arc<SampleCache>,
    pub copy: CopyPool,
    /// Targets indexed by storage node id (local device or NVMe-oF remote).
    pub targets: Vec<Arc<dyn NvmeTarget>>,
    /// This compute node's reader id.
    pub reader_id: usize,
    /// Total readers participating in `dlfs_sequence`.
    pub readers: usize,
    /// Per-storage-node on-device layouts when this instance is persistent
    /// (created by `import`/`remount`); `None` for ephemeral mounts.
    pub layouts: Option<Arc<Vec<crate::layout::Superblock>>>,
    /// Replica routing, per-block integrity tables and target health;
    /// `None` on the default (`replicas == 1`, no `verify_reads`) path —
    /// every read then takes its historical branch unchanged.
    pub redundancy: Option<Arc<Redundancy>>,
    /// Per-chunk codec + per-node encoded-frame tables when the dataset
    /// was staged with `cfg.codec != Identity`; `None` keeps every read
    /// on its historical raw-bytes branch.
    pub codec: Option<Arc<crate::codec::CodecTables>>,
    /// Tenant this handle's reads belong to: folded into every cache key
    /// and charged at the QoS admission gate. 0 is the implicit single
    /// tenant of non-QoS mounts.
    pub tenant: crate::tenant::TenantId,
    /// The instance's shared admission gate; `None` — the default — skips
    /// admission entirely (no QoS config on the mount).
    pub qos: Option<Arc<crate::tenant::TenantQos>>,
}

impl std::fmt::Debug for DlfsShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlfsShared")
            .field("reader", &self.reader_id)
            .field("readers", &self.readers)
            .field("targets", &self.targets.len())
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl DlfsShared {
    /// Tenant-qualified cache key for a range on `nid` starting at
    /// `start` (see [`crate::cache::range_key`]).
    #[inline]
    pub fn rkey(&self, nid: u16, start: u64) -> crate::cache::RangeKey {
        crate::cache::range_key(self.tenant, nid, start)
    }

    /// A handle over the same devices, cache pool and copy threads that
    /// reads as `tenant` instead. Cheap: every heavy member is shared.
    pub fn with_tenant(self: &Arc<Self>, tenant: crate::tenant::TenantId) -> Arc<DlfsShared> {
        if tenant == self.tenant {
            return self.clone();
        }
        Arc::new(DlfsShared {
            cfg: self.cfg.clone(),
            dir: self.dir.clone(),
            cache: self.cache.clone(),
            copy: self.copy.clone(),
            targets: self.targets.clone(),
            reader_id: self.reader_id,
            readers: self.readers,
            layouts: self.layouts.clone(),
            redundancy: self.redundancy.clone(),
            codec: self.codec.clone(),
            tenant,
            qos: self.qos.clone(),
        })
    }
}

/// Telemetry handles for one I/O thread, living under `dlfs.io.*` in the
/// engine's registry (see DESIGN.md, "Telemetry").
struct IoTelemetry {
    samples_delivered: Counter,
    bytes_delivered: Counter,
    requests_posted: Counter,
    completions: Counter,
    poll_spins: Counter,
    /// Commands resubmitted after a device media error or fabric timeout.
    retries: Counter,
    /// Commands the initiator gave up on after its I/O timeout (the fabric
    /// dropped the capsule or the target was down).
    timeouts: Counter,
    batches: Counter,
    deadline_misses: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_pins: Counter,
    /// Cross-epoch cache counters under `dlfs.cache.*`. Registered only
    /// with [`CacheMode::CrossEpoch`] — under the zero-knob default they
    /// are bound to a detached registry so metric renders stay
    /// byte-identical to the pre-cache engine.
    ce_hits: Counter,
    ce_misses: Counter,
    prefetch_issued: Counter,
    prefetch_hits: Counter,
    /// Shared-completion-queue drain stats.
    scq_drains: Counter,
    scq_empty_polls: Counter,
    scq_drain_batch: Histo,
    /// Per-stage latency of the four-stage pipeline.
    prep_ns: Histo,
    post_ns: Histo,
    poll_ns: Histo,
    copy_ns: Histo,
    /// Integrity/replication counters under `dlfs.integrity.*`. Registered
    /// only when the instance carries a [`Redundancy`] — under the
    /// zero-knob default they bind to a detached registry so metric
    /// renders stay byte-identical.
    iv_verified: Counter,
    iv_mismatches: Counter,
    iv_repairs: Counter,
    iv_scrubbed: Counter,
    iv_failovers: Counter,
    iv_hedges: Counter,
    iv_hedge_wins: Counter,
    /// Rebuild counters under `dlfs.rebuild.*`. Registered only when the
    /// instance carries a cluster [`fabric::Membership`] view
    /// ([`crate::DlfsConfig::fail_dead_after`]) — otherwise they bind to a
    /// detached registry, keeping metric renders of every pre-membership
    /// configuration byte-identical.
    rb_blocks: Counter,
    /// Blocks a catch-up resync found already verified on the replacement
    /// device (a restarted node that kept its media skips them).
    rb_clean: Counter,
    /// Blocks no surviving replica could serve cleanly.
    rb_failed: Counter,
    rb_completed: Counter,
    /// Chunks with less than full redundancy right now (drops toward zero
    /// as the rebuild progresses).
    rb_at_risk: Gauge,
    /// Codec counters under `dlfs.codec.*`: encoded bytes fetched off the
    /// devices vs raw bytes they decoded to. Registered only when the
    /// instance carries [`crate::codec::CodecTables`] — under the
    /// zero-knob default they bind to a detached registry so metric
    /// renders stay byte-identical.
    codec_bytes_in: Counter,
    codec_bytes_out: Counter,
    /// Offload counters under `dlfs.offload.*`. Registered only with
    /// [`crate::DlfsConfig::offload`]; detached otherwise.
    of_requests: Counter,
    of_samples: Counter,
    /// Bytes carried over the fabric by dense offload responses.
    of_wire_bytes: Counter,
}

impl IoTelemetry {
    fn new(
        reg: &Registry,
        cross_epoch: bool,
        integrity: bool,
        membership: bool,
        codec: bool,
        offload: bool,
    ) -> IoTelemetry {
        let io = reg.scoped("dlfs.io");
        let cache = if cross_epoch {
            reg.scoped("dlfs.cache")
        } else {
            Registry::new().scoped("dlfs.cache")
        };
        let iv = if integrity {
            reg.scoped("dlfs.integrity")
        } else {
            Registry::new().scoped("dlfs.integrity")
        };
        let rb = if membership {
            reg.scoped("dlfs.rebuild")
        } else {
            Registry::new().scoped("dlfs.rebuild")
        };
        let cd = if codec {
            reg.scoped("dlfs.codec")
        } else {
            Registry::new().scoped("dlfs.codec")
        };
        let of = if offload {
            reg.scoped("dlfs.offload")
        } else {
            Registry::new().scoped("dlfs.offload")
        };
        IoTelemetry {
            codec_bytes_in: cd.counter("bytes_in"),
            codec_bytes_out: cd.counter("bytes_out"),
            of_requests: of.counter("requests"),
            of_samples: of.counter("samples"),
            of_wire_bytes: of.counter("wire_bytes"),
            rb_blocks: rb.counter("blocks_rebuilt"),
            rb_clean: rb.counter("blocks_clean"),
            rb_failed: rb.counter("blocks_failed"),
            rb_completed: rb.counter("completed"),
            rb_at_risk: rb.gauge("chunks_at_risk"),
            iv_verified: iv.counter("verified"),
            iv_mismatches: iv.counter("mismatches"),
            iv_repairs: iv.counter("repairs"),
            iv_scrubbed: iv.counter("scrubbed"),
            iv_failovers: iv.counter("failovers"),
            iv_hedges: iv.counter("hedges"),
            iv_hedge_wins: iv.counter("hedge_wins"),
            ce_hits: cache.counter("hits"),
            ce_misses: cache.counter("misses"),
            prefetch_issued: cache.counter("prefetch_issued"),
            prefetch_hits: cache.counter("prefetch_hits"),
            samples_delivered: io.counter("samples_delivered"),
            bytes_delivered: io.counter("bytes_delivered"),
            requests_posted: io.counter("requests_posted"),
            completions: io.counter("completions"),
            poll_spins: io.counter("poll_spins"),
            retries: io.counter("retries"),
            timeouts: io.counter("timeouts"),
            batches: io.counter("batches"),
            deadline_misses: io.counter("deadline_misses"),
            cache_hits: io.counter("cache.hits"),
            cache_misses: io.counter("cache.misses"),
            cache_pins: io.counter("cache.pins"),
            scq_drains: io.counter("scq.drains"),
            scq_empty_polls: io.counter("scq.empty_polls"),
            scq_drain_batch: io.histogram("scq.drain_batch"),
            prep_ns: io.histogram("stage.prep_ns"),
            post_ns: io.histogram("stage.post_ns"),
            poll_ns: io.histogram("stage.poll_ns"),
            copy_ns: io.histogram("stage.copy_ns"),
        }
    }
}

#[derive(Debug)]
struct ItemRt {
    parts_left: u32,
    samples_total: u32,
    /// Samples handed to copy threads so far (cursor into the item's
    /// shuffled sample list).
    dispatched: u32,
    copies_done: u32,
    fetched: bool,
    /// Block-aligned base offset of the fetched range.
    base: u64,
}

/// A retry parked until its backoff elapses: readiness instant, insertion
/// sequence (keeps same-instant pops deterministic), item idx, part,
/// failed attempts, preferred replica for the resubmission.
type DelayedPart = Reverse<(Time, u64, u32, u32, u32, u32)>;

/// Epoch execution state.
struct EpochState {
    /// The collective seed and epoch number `sequence` was called with
    /// (the prefetcher derives the *next* epoch's item deal from them).
    seed: u64,
    epoch: u64,
    plan: ReaderPlan,
    items: Vec<ItemRt>,
    /// Items resident with undelivered samples (the sample-cache draw set).
    resident_ready: Vec<u32>,
    /// Samples dispatched to copy threads this epoch.
    total_dispatched: usize,
    total: usize,
    /// Next item to start fetching.
    next_fetch: usize,
    /// Parts awaiting qpair submission: (item idx, part no, failed
    /// attempts so far, preferred replica).
    pending_parts: VecDeque<(u32, u32, u32, u32)>,
    /// Failed parts waiting out their retry backoff.
    delayed_parts: BinaryHeap<DelayedPart>,
    delay_seq: u64,
    /// Buffers per item while open.
    bufs: HashMap<u32, Vec<DmaBuf>>,
    /// Items fetched or fetching and not yet retired.
    open_items: usize,
    /// Seeded draw for the random selection among resident items.
    rng: SplitMix64,
}

/// Outcome of [`DlfsIo::start_fetch`].
enum FetchStart {
    /// The item is being fetched (or was already resident).
    Started,
    /// No cache chunks available even after eviction; retry after a
    /// release frees or unpins something.
    Backpressure,
    /// A prefetch of exactly this range is in flight: don't double-fetch,
    /// its completion will publish the range.
    AwaitPrefetch,
}

/// Plan-aware prefetcher state: once the current epoch's fetch list is
/// exhausted, the engine warms the *next* epoch's items (this reader's
/// share of the `(seed, epoch+1)` deal) into the cross-epoch cache.
#[derive(Default)]
struct PrefetchState {
    /// `(seed, epoch)` the queue was built for; rebuilt when it goes
    /// stale.
    built_for: Option<(u64, u64)>,
    /// Upcoming ranges to warm, in the next epoch's first-use order.
    queue: VecDeque<(u16, u64, u64)>,
    /// In-flight prefetches: range key → (chunk, published length).
    inflight: HashMap<RangeKey, (DmaBuf, u64)>,
    /// Device command id → range key of an in-flight prefetch.
    cmds: HashMap<u64, RangeKey>,
}

/// In-flight re-replication of one dead node, executed in slices through
/// idle reactor gaps (see [`DlfsIo::begin_rebuild`]).
struct RebuildState {
    plan: RebuildPlan,
    /// Current extent index into `plan.extents`.
    ext: usize,
    /// Next block within the current extent.
    blk: u64,
    /// Blocks walked so far (copied, found clean, or failed).
    walked: u64,
    /// Blocks no surviving replica could serve.
    failed: u64,
}

/// A per-thread DLFS I/O handle.
pub struct DlfsIo {
    shared: Arc<DlfsShared>,
    qpairs: Vec<IoQPair>,
    epoch: Option<EpochState>,
    inflight: HashMap<u64, (u32, u32, u32, u32)>, // cmd -> (item idx, part, attempt, replica)
    next_cmd: u64,
    /// Parts whose delivered bytes failed checksum verification at least
    /// once this epoch: a verified success from a replica then read-repairs
    /// the home extent, and retry exhaustion surfaces `Corrupt` instead of
    /// a plain I/O error.
    mismatched: HashSet<(u32, u32)>,
    /// Hedge pairing: cmd → (partner cmd, partner's qpair, whether *this*
    /// cmd is the late-issued duplicate). The first verified completion of
    /// a pair delivers; its partner is cancelled (or silently dropped).
    hedges: HashMap<u64, (u64, usize, bool)>,
    /// Primaries due for a hedged duplicate: (due instant, cmd).
    hedge_due: BinaryHeap<Reverse<(Time, u64)>>,
    /// Background scrub position: (storage node, block within its data
    /// region).
    scrub_cursor: (usize, u64),
    /// In-flight node rebuild, throttled through idle reactor gaps
    /// (`rebuild_gap_blocks` per gap) so foreground reads keep their
    /// latency; `None` when full redundancy holds.
    rebuild: Option<RebuildState>,
    /// Fatal engine failure (a part exhausted its retry budget). Sticky
    /// until the epoch is replaced: the plan can no longer be completed.
    failed: Option<DlfsError>,
    /// Deadline of the in-progress `submit` call; retry backoffs are
    /// clamped so a resubmission is never pointlessly scheduled past it.
    current_deadline: Option<Time>,
    registry: Registry,
    tel: IoTelemetry,
    /// Dispatch instant per copy slot of the in-progress `submit` call
    /// (slot indices restart at zero each call).
    copy_dispatch_at: Vec<Time>,
    /// Plan-aware prefetcher (active only with `CacheMode::CrossEpoch`
    /// and `prefetch_window > 0`).
    prefetch: PrefetchState,
    /// Completion-event feed: every qpair submit reports its completion
    /// instant here, so the engine advances straight to the next event
    /// instead of spinning poll iterations toward it.
    clock: Arc<CompletionClock>,
    /// Reactor activity counters (`dlfs.reactor.*`; detached from the
    /// registry unless [`DlfsConfig::reactor_stats`] is set).
    rstats: ReactorStats,
}

impl std::fmt::Debug for DlfsIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlfsIo")
            .field("reader", &self.shared.reader_id)
            .finish()
    }
}

impl DlfsIo {
    pub fn new(shared: Arc<DlfsShared>) -> DlfsIo {
        DlfsIo::with_registry(shared, &Registry::new())
    }

    /// Build an I/O handle recording its telemetry into `reg`: engine
    /// metrics under `dlfs.io.*`, per-device qpair metrics under
    /// `blocksim.dev{n}.*`.
    pub fn with_registry(shared: Arc<DlfsShared>, reg: &Registry) -> DlfsIo {
        let qd = shared.cfg.queue_depth;
        let clock = CompletionClock::new();
        let qpairs = shared
            .targets
            .iter()
            .enumerate()
            .map(|(nid, t)| {
                let mut qp = IoQPair::new(t.clone(), qd);
                qp.attach_telemetry(&reg.scoped(&format!("blocksim.dev{nid}")));
                qp.attach_completion_hook(clock.clone(), nid);
                qp
            })
            .collect();
        let cross_epoch = shared.cfg.cache_mode == CacheMode::CrossEpoch;
        if cross_epoch {
            shared.cache.attach_telemetry(&reg.scoped("dlfs.cache"));
        }
        let membership = shared
            .redundancy
            .as_deref()
            .and_then(|r| r.membership.as_ref());
        if let Some(m) = membership {
            m.attach_telemetry(&reg.scoped("dlfs.membership"));
        }
        let membership = membership.is_some();
        DlfsIo {
            tel: IoTelemetry::new(
                reg,
                cross_epoch,
                shared.redundancy.is_some(),
                membership,
                shared.codec.is_some(),
                shared.cfg.offload,
            ),
            rstats: ReactorStats::new(reg, shared.cfg.reactor_stats),
            registry: reg.clone(),
            shared,
            qpairs,
            epoch: None,
            inflight: HashMap::new(),
            next_cmd: 1,
            mismatched: HashSet::new(),
            hedges: HashMap::new(),
            hedge_due: BinaryHeap::new(),
            scrub_cursor: (0, 0),
            rebuild: None,
            failed: None,
            current_deadline: None,
            copy_dispatch_at: Vec::new(),
            prefetch: PrefetchState::default(),
            clock,
        }
    }

    /// Snapshot of this handle's metrics: `dlfs.io.*` engine counters,
    /// per-stage latency histograms and `blocksim.dev*` qpair stats.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The registry this handle records into (shared when constructed via
    /// [`DlfsIo::with_registry`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn shared(&self) -> &Arc<DlfsShared> {
        &self.shared
    }

    /// Abandon the current epoch: wait out in-flight device commands (SPDK
    /// cannot cancel a submitted command) and release every sample-cache
    /// range the plan still holds. Called by `sequence` when an epoch is
    /// replaced before being fully consumed.
    fn abort_epoch(&mut self, rt: &Runtime) {
        if self.epoch.is_none() && self.prefetch.cmds.is_empty() {
            return;
        }
        // Drain outstanding commands (including in-flight prefetches:
        // their chunks would leak if merely forgotten).
        while !self.inflight.is_empty() || !self.prefetch.cmds.is_empty() {
            let mut harvested = 0;
            for q in 0..self.qpairs.len() {
                if self.qpairs[q].outstanding() == 0 {
                    continue;
                }
                for comp in self.qpairs[q].process_completions(rt, usize::MAX) {
                    if self.inflight.remove(&comp.id).is_none() {
                        self.prefetch_complete(rt, comp.id, comp.status);
                    }
                    harvested += 1;
                }
            }
            if self.inflight.is_empty() && self.prefetch.cmds.is_empty() {
                break;
            }
            if harvested == 0 {
                match self
                    .clock
                    .next_due(|tag| self.qpairs[tag].next_completion_at())
                {
                    Some(t) => self.advance_to(rt, t),
                    None => break,
                }
            }
        }
        self.hedges.clear();
        self.hedge_due.clear();
        self.mismatched.clear();
        let Some(st) = self.epoch.take() else {
            return; // only prefetches were outstanding
        };
        for (idx, bufs) in st.bufs {
            let it = &st.plan.items[idx as usize];
            let key = self.shared.rkey(it.nid, it.offset);
            if self.shared.cache.contains(key) {
                // Published: the cache owns the chunks. EpochScoped:
                // release retires them (deferred if zero-copy samples
                // still pin the range). CrossEpoch: the range survives on
                // the evictable LRU tail for the replacing epoch. An
                // eviction racing the teardown already reclaimed the
                // chunks; nothing left to do for that key.
                let _ = self.shared.cache.release(key);
            } else {
                // Never became resident: return our chunks directly.
                for b in bufs {
                    self.shared.cache.free_raw(b);
                }
            }
            for &sample in &it.samples {
                self.shared.dir.set_valid(sample, false);
            }
        }
    }

    /// `dlfs_sequence`: derive this reader's epoch plan from the collective
    /// seed. Every reader calling with the same (seed, epoch) computes the
    /// same global plan with no network traffic (paper §III-D1). Any
    /// partially-consumed previous epoch is aborted first.
    pub fn sequence(&mut self, rt: &Runtime, seed: u64, epoch: u64) -> usize {
        self.abort_epoch(rt);
        let cfg = &self.shared.cfg;
        let mode = cfg.effective_mode(self.shared.dir.avg_sample_bytes());
        let plan = build_epoch_plan(
            &self.shared.dir,
            cfg.chunk_size,
            self.shared.readers,
            mode,
            cfg.window_chunks,
            seed,
            epoch,
        );
        let mine = plan.readers[self.shared.reader_id].clone();
        let items = mine
            .items
            .iter()
            .map(|it| ItemRt {
                parts_left: 0,
                samples_total: it.samples.len() as u32,
                dispatched: 0,
                copies_done: 0,
                fetched: false,
                base: 0,
            })
            .collect();
        let n = mine.samples();
        self.failed = None;
        // A queue built during the previous epoch targeted *this* one;
        // whatever it already warmed is found by the demand probes, the
        // rest is stale.
        self.prefetch.queue.clear();
        self.prefetch.built_for = None;
        self.epoch = Some(EpochState {
            seed,
            epoch,
            plan: mine,
            items,
            resident_ready: Vec::new(),
            total_dispatched: 0,
            total: n,
            next_fetch: 0,
            pending_parts: VecDeque::new(),
            delayed_parts: BinaryHeap::new(),
            delay_seq: 0,
            bufs: HashMap::new(),
            open_items: 0,
            rng: SplitMix64::derive(seed ^ 0xD15B, epoch * 7919 + self.shared.reader_id as u64),
        });
        n
    }

    /// Samples remaining in the current epoch plan.
    pub fn remaining(&self) -> usize {
        self.epoch
            .as_ref()
            .map(|e| e.total - e.total_dispatched)
            .unwrap_or(0)
    }

    /// The planned delivery order of the current epoch (statistically
    /// equivalent to the engine's resident-random draw; used by the
    /// Fig. 13 order extraction).
    pub fn planned_order(&self) -> Option<&[u32]> {
        self.epoch.as_ref().map(|e| &e.plan.order[..])
    }

    /// Stored-frame geometry under the instance codec: `(slba, read
    /// blocks, alloc bytes)` of the frame covering byte `offset` on node
    /// `nid`, or `None` without a codec. Only the encoded prefix is read
    /// off the device (`enc_blocks`, which can exceed the covering blocks
    /// of a short fetch range when a padded frame stored verbatim), but
    /// the allocation covers the frame's full raw extent so it can be
    /// decoded in place after verification.
    fn coded_geometry(&self, nid: u16, offset: u64) -> Option<(u64, u32, u64)> {
        let tables = self.shared.codec.as_deref()?;
        let chunk = self.shared.cfg.chunk_size;
        let frames = &tables.per_node[nid as usize];
        let f = frames.frame_of(chunk, offset);
        let start = frames.base + f as u64 * chunk;
        debug_assert_eq!(start % BLOCK_SIZE, 0, "frames are block-aligned");
        let raw = frames.raw_len(chunk, f) as u64;
        Some((
            start / BLOCK_SIZE,
            tables.enc_blocks(nid as usize, f),
            raw.div_ceil(BLOCK_SIZE) * BLOCK_SIZE,
        ))
    }

    /// Device-read geometry of the fetch range `(nid, offset, len)`:
    /// `(slba, read blocks, alloc bytes)`. The historical path reads
    /// exactly the covering blocks; under a codec the range is one stored
    /// frame and only its encoded prefix hits the device.
    fn read_geometry(&self, nid: u16, offset: u64, len: u64) -> (u64, u32, u64) {
        match self.coded_geometry(nid, offset) {
            Some(g) => g,
            None => {
                let (slba, nblocks, _) = covering_blocks(offset, len);
                (slba, nblocks, nblocks as u64 * BLOCK_SIZE)
            }
        }
    }

    /// Decode one fetched frame in place (stored encoded prefix → raw
    /// frame bytes) before it becomes visible to any consumer — the
    /// sample cache only ever holds decoded bytes, so every warm path and
    /// zero-copy pin serves raw data. Runs strictly *after* block
    /// verification and read-repair, which cover the stored bytes.
    /// Charges the configured decoder throughput on the calling reader
    /// thread and records the `dlfs.codec.*` counters. No-op without a
    /// codec.
    fn decode_frame(&self, rt: &Runtime, nid: u16, offset: u64, bufs: &[DmaBuf]) {
        let Some(tables) = self.shared.codec.as_deref() else {
            return;
        };
        let chunk = self.shared.cfg.chunk_size;
        let frames = &tables.per_node[nid as usize];
        let f = frames.frame_of(chunk, offset);
        let enc_len = frames.lens[f] as usize;
        let raw_len = frames.raw_len(chunk, f);
        rt.work(self.shared.cfg.costs.decode(raw_len as u64));
        self.tel.codec_bytes_in.add(enc_len as u64);
        self.tel.codec_bytes_out.add(raw_len as u64);
        if enc_len == raw_len {
            return; // stored verbatim: the buffer already holds raw bytes
        }
        debug_assert_eq!(bufs.len(), 1, "a coded frame fits one cache chunk");
        let codec = tables.kind.codec();
        bufs[0].with_mut(|d| {
            let raw = codec.decode(&d[..enc_len], raw_len);
            d[..raw_len].copy_from_slice(&raw);
        });
    }

    /// Start fetching item `idx`: probe the cross-epoch cache first, else
    /// allocate cache chunks and queue the item's parts for the device.
    fn start_fetch(&mut self, idx: u32) -> FetchStart {
        let cross = self.shared.cfg.cache_mode == CacheMode::CrossEpoch;
        let coded = self.shared.codec.is_some();
        let (key, slba, alloc_bytes) = {
            let st = self.epoch.as_ref().expect("no epoch");
            let it = &st.plan.items[idx as usize];
            let (slba, _, alloc) = self.read_geometry(it.nid, it.offset, it.len);
            (self.shared.rkey(it.nid, it.offset), slba, alloc)
        };
        let st = self.epoch.as_mut().expect("no epoch");
        let it = &st.plan.items[idx as usize];
        if cross {
            // Residency probe: a previous epoch (or the prefetcher) may
            // already hold this exact range — warm items skip the device
            // entirely.
            if let Some((bufs, len, was_prefetched)) = self.shared.cache.acquire(key) {
                // Under a codec a synchronous read may have parked the
                // whole (longer) raw frame under this key.
                debug_assert!(
                    if coded { len >= it.len } else { len == it.len },
                    "cached range geometry drifted"
                );
                self.tel.ce_hits.inc();
                if was_prefetched {
                    self.tel.prefetch_hits.inc();
                }
                let rt_item = &mut st.items[idx as usize];
                rt_item.parts_left = 0;
                rt_item.fetched = true;
                rt_item.base = slba * BLOCK_SIZE;
                st.bufs.insert(idx, bufs);
                st.open_items += 1;
                let it = &st.plan.items[idx as usize];
                for &s in &it.samples {
                    self.shared.dir.set_valid(s, true);
                }
                st.resident_ready.push(idx);
                return FetchStart::Started;
            }
            if self.prefetch.inflight.contains_key(&key) {
                // The range is already on the wire as a prefetch; fetching
                // it again would double-publish. Its completion will
                // publish it, and the next probe will hit.
                return FetchStart::AwaitPrefetch;
            }
            self.tel.ce_misses.inc();
        }
        let Some(bufs) = self.shared.cache.alloc_for(alloc_bytes) else {
            return FetchStart::Backpressure;
        };
        let parts = bufs.len() as u32;
        let rt_item = &mut st.items[idx as usize];
        rt_item.parts_left = parts;
        rt_item.fetched = true;
        rt_item.base = slba * BLOCK_SIZE;
        st.bufs.insert(idx, bufs);
        for p in 0..parts {
            st.pending_parts.push_back((idx, p, 0, 0));
        }
        st.open_items += 1;
        FetchStart::Started
    }

    /// Pump stage: keep the fetch window full and the qpairs fed.
    fn pump(&mut self, rt: &Runtime) -> usize {
        let window = self.shared.cfg.window_chunks;
        let mut progressed = 0;

        // Open new items up to the window.
        loop {
            let (next_fetch, item_count, open) = {
                let st = self.epoch.as_ref().expect("no epoch");
                (st.next_fetch, st.plan.items.len(), st.open_items)
            };
            if next_fetch >= item_count {
                break;
            }
            // The pipeline must never starve: with nothing open at all, a
            // fetch is mandatory regardless of the window budget.
            let starving = open == 0;
            if open >= 2 * window && !starving {
                break;
            }
            match self.start_fetch(next_fetch as u32) {
                FetchStart::Started => {
                    self.epoch.as_mut().expect("no epoch").next_fetch += 1;
                    progressed += 1;
                }
                FetchStart::AwaitPrefetch => {
                    // An in-flight prefetch owns this range; progress
                    // comes from polling its completion.
                    break;
                }
                FetchStart::Backpressure => {
                    assert!(
                        !starving,
                        "DLFS sample cache too small for a single fetch item; \
                         increase pool_chunks"
                    );
                    break; // cache backpressure; retry after releases
                }
            }
        }

        // Move retry parts whose backoff has elapsed into the submit queue.
        {
            let now = rt.now();
            let st = self.epoch.as_mut().expect("no epoch");
            while let Some(&Reverse((ready_at, _, idx, part, attempt, replica))) =
                st.delayed_parts.peek()
            {
                if ready_at > now {
                    break;
                }
                st.delayed_parts.pop();
                st.pending_parts.push_back((idx, part, attempt, replica));
                progressed += 1;
            }
        }

        // Doorbell flush: stage every queued part the qpairs have room for
        // and submit them in one pass (prep + post per request). Capacity
        // is checked up front — the queue-full probe of the legacy loop is
        // replaced by a bookkeeping check — but the virtual-time charges
        // are identical: a flush that stops at a full qpair still pays one
        // prep+post (the legacy rejected-submit charge, unrecorded in the
        // stage histograms then and now).
        let chunk = self.shared.cfg.chunk_size as usize;
        let costs = self.shared.cfg.costs.clone();
        let qd = self.shared.cfg.queue_depth;
        let hedging = self.shared.cfg.hedge_reads
            && self
                .shared
                .redundancy
                .as_deref()
                .is_some_and(|r| r.replicas > 1);
        let mut flushed = false;
        let mut blocked = false;
        while let Some(&(idx, part, attempt, replica)) =
            self.epoch.as_ref().expect("no epoch").pending_parts.front()
        {
            let (dev, slba_dev, nblocks_part, replica, buf) = {
                let st = self.epoch.as_ref().expect("no epoch");
                let it = &st.plan.items[idx as usize];
                let (slba, nblocks, _) = self.read_geometry(it.nid, it.offset, it.len);
                let blocks_per_chunk = (chunk as u64 / BLOCK_SIZE) as u32;
                let start = part * blocks_per_chunk;
                let n = (nblocks - start).min(blocks_per_chunk);
                let buf = st.bufs[&idx][part as usize].clone();
                // Route through the replica map (health-aware) when the
                // instance is redundant; replica 0 is the home copy.
                let (r, dev, slba_dev) = match self.shared.redundancy.as_deref() {
                    Some(red) if red.replicas > 1 => {
                        let r = red.pick_replica(it.nid, replica, rt.now());
                        let (d, s) = red.route(it.nid, r, slba + start as u64);
                        (r, d as usize, s)
                    }
                    _ => (0, it.nid as usize, slba + start as u64),
                };
                (dev, slba_dev, n, r, buf)
            };
            if self.qpairs[dev].outstanding() >= qd {
                blocked = true;
                break; // queue full; poll first
            }
            let cmd = self.next_cmd;
            let t0 = rt.now();
            rt.work(costs.prep_request);
            let t1 = rt.now();
            rt.work(costs.post_request);
            self.qpairs[dev]
                .submit_read(rt, cmd, slba_dev, nblocks_part, buf, 0)
                .expect("capacity checked before staging");
            self.tel.prep_ns.record_dur(t1 - t0);
            self.tel.post_ns.record_dur(rt.now() - t1);
            self.next_cmd += 1;
            self.tel.requests_posted.inc();
            self.inflight.insert(cmd, (idx, part, attempt, replica));
            if hedging {
                self.hedge_due
                    .push(Reverse((rt.now() + self.hedge_delay(rt.now()), cmd)));
            }
            self.epoch
                .as_mut()
                .expect("no epoch")
                .pending_parts
                .pop_front();
            progressed += 1;
            flushed = true;
        }
        if blocked {
            // The legacy engine discovered the full queue by paying a
            // prep+post for the rejected submit; keep the clock identical.
            rt.work(costs.prep_request);
            rt.work(costs.post_request);
        }
        if flushed {
            self.rstats.doorbells.inc();
        }
        if hedging {
            progressed += self.fire_hedges(rt);
        }

        // With the epoch's own fetch list exhausted, spend the idle tail
        // warming the next epoch (plan-aware prefetch).
        progressed += self.pump_prefetch(rt);
        progressed
    }

    /// Delay before a demand read is hedged with a duplicate on the next
    /// replica: a quarter of the remaining deadline budget, floored so
    /// near-deadline batches don't hedge instantly.
    fn hedge_delay(&self, now: Time) -> Dur {
        match self.current_deadline {
            Some(dl) if dl > now => {
                let quarter = Dur::nanos((dl - now).as_nanos() / 4);
                quarter.max(Dur::micros(5))
            }
            _ => Dur::micros(50),
        }
    }

    /// Issue hedged duplicates for primaries that have been in flight past
    /// their hedge delay (config `hedge_reads`, replicas >= 2). The
    /// duplicate reads the *next* replica into the same buffer; whichever
    /// command completes (and verifies) first delivers the part, and its
    /// partner is cancelled on the device.
    fn fire_hedges(&mut self, rt: &Runtime) -> usize {
        let Some(red) = self.shared.redundancy.clone() else {
            return 0;
        };
        let qd = self.shared.cfg.queue_depth;
        let costs = self.shared.cfg.costs.clone();
        let chunk = self.shared.cfg.chunk_size;
        let mut fired = 0;
        while let Some(&Reverse((due, cmd))) = self.hedge_due.peek() {
            if due > rt.now() {
                break;
            }
            self.hedge_due.pop();
            // Already completed, or already hedged: nothing to do.
            let Some(&(idx, part, attempt, replica)) = self.inflight.get(&cmd) else {
                continue;
            };
            if self.hedges.contains_key(&cmd) {
                continue;
            }
            let Some(st) = self.epoch.as_ref() else {
                continue;
            };
            let it = &st.plan.items[idx as usize];
            let (slba, nblocks, _) = self.read_geometry(it.nid, it.offset, it.len);
            let blocks_per_chunk = (chunk / BLOCK_SIZE) as u32;
            let start = part * blocks_per_chunk;
            let n = (nblocks - start).min(blocks_per_chunk);
            let buf = st.bufs[&idx][part as usize].clone();
            let r2 = (replica + 1) % red.replicas;
            let (dev1, _) = red.route(it.nid, replica, slba + start as u64);
            let (dev2, slba2) = red.route(it.nid, r2, slba + start as u64);
            if r2 == replica || dev2 == dev1 {
                continue; // no distinct copy to hedge onto
            }
            if self.qpairs[dev2 as usize].outstanding() >= qd {
                continue; // no room; the primary keeps sole ownership
            }
            let cmd2 = self.next_cmd;
            rt.work(costs.prep_request);
            rt.work(costs.post_request);
            self.qpairs[dev2 as usize]
                .submit_read(rt, cmd2, slba2, n, buf, 0)
                .expect("capacity checked before staging");
            self.next_cmd += 1;
            self.tel.requests_posted.inc();
            self.tel.iv_hedges.inc();
            self.inflight.insert(cmd2, (idx, part, attempt, r2));
            self.hedges.insert(cmd, (cmd2, dev2 as usize, false));
            self.hedges.insert(cmd2, (cmd, dev1 as usize, true));
            fired += 1;
        }
        fired
    }

    /// Plan-aware prefetch (paper-adjacent: the epoch access sequence is
    /// known at `dlfs_sequence` time, so the *next* epoch's is too). Once
    /// the current epoch has no more items to open, post single-chunk
    /// fetches for the ranges epoch+1 will deal to this reader — newest
    /// data lands in the cross-epoch cache as released (evictable)
    /// ranges, warming the next epoch's head during this one's tail.
    /// Clamped by the prefetch window, pool headroom (demand fetches keep
    /// `window_chunks` of reserve) and qpair depth.
    fn pump_prefetch(&mut self, rt: &Runtime) -> usize {
        let cfg = &self.shared.cfg;
        let pf_window = cfg.prefetch_window;
        if pf_window == 0 || cfg.cache_mode != CacheMode::CrossEpoch {
            return 0;
        }
        let Some(st) = self.epoch.as_ref() else {
            return 0;
        };
        if st.next_fetch < st.plan.items.len() {
            return 0; // demand fetches still pending; they have priority
        }
        let (seed, epoch) = (st.seed, st.epoch);
        if self.prefetch.built_for != Some((seed, epoch + 1)) {
            let mode = cfg.effective_mode(self.shared.dir.avg_sample_bytes());
            self.prefetch.queue = reader_item_ranges(
                &self.shared.dir,
                cfg.chunk_size,
                self.shared.readers,
                mode,
                seed,
                epoch + 1,
                self.shared.reader_id,
            )
            .into();
            self.prefetch.built_for = Some((seed, epoch + 1));
        }
        let chunk = cfg.chunk_size;
        let reserve = cfg.window_chunks;
        let costs = cfg.costs.clone();
        let mut progressed = 0;
        while self.prefetch.inflight.len() < pf_window {
            let Some(&(nid, offset, len)) = self.prefetch.queue.front() else {
                break;
            };
            let key = self.shared.rkey(nid, offset);
            let (slba, nblocks, bytes) = self.read_geometry(nid, offset, len);
            if bytes > chunk
                || self.shared.cache.contains(key)
                || self.prefetch.inflight.contains_key(&key)
                || self.demand_fetch_in_flight(key)
            {
                // Multi-chunk edge items aren't worth speculative slots;
                // already-resident or in-flight ranges need no warming.
                self.prefetch.queue.pop_front();
                continue;
            }
            let Some(mut bufs) = self.shared.cache.alloc_prefetch(bytes, reserve) else {
                break; // no speculative headroom; retry when pressure drops
            };
            debug_assert_eq!(bufs.len(), 1);
            let buf = bufs.pop().expect("single chunk");
            // Capacity bookkeeping replaces the legacy rejected-submit
            // probe; the prep+post charge for a blocked flush is kept so
            // the virtual clock is unchanged.
            let full = self.qpairs[nid as usize].outstanding() >= self.shared.cfg.queue_depth;
            let cmd = self.next_cmd;
            let t0 = rt.now();
            rt.work(costs.prep_request);
            let t1 = rt.now();
            rt.work(costs.post_request);
            if full {
                self.shared.cache.free_raw(buf);
                break; // qpair full; demand completions first
            }
            self.qpairs[nid as usize]
                .submit_read(rt, cmd, slba, nblocks, buf.clone(), 0)
                .expect("capacity checked before staging");
            self.tel.prep_ns.record_dur(t1 - t0);
            self.tel.post_ns.record_dur(rt.now() - t1);
            self.next_cmd += 1;
            self.tel.requests_posted.inc();
            self.tel.prefetch_issued.inc();
            self.prefetch.queue.pop_front();
            self.prefetch.cmds.insert(cmd, key);
            self.prefetch.inflight.insert(key, (buf, len));
            progressed += 1;
        }
        if progressed > 0 {
            self.rstats.doorbells.inc();
        }
        progressed
    }

    /// Is `key` currently being fetched by the demand path (allocated but
    /// not yet published)? The prefetcher must not double-fetch it.
    fn demand_fetch_in_flight(&self, key: RangeKey) -> bool {
        let Some(st) = self.epoch.as_ref() else {
            return false;
        };
        st.bufs.keys().any(|&idx| {
            let it = &st.plan.items[idx as usize];
            self.shared.rkey(it.nid, it.offset) == key && st.items[idx as usize].parts_left > 0
        })
    }

    /// Route the completion of a prefetch command: publish the warmed
    /// range (born released/evictable), or — on failure, or if the range
    /// became resident meanwhile — return the chunk. Prefetches are
    /// best-effort: no retries; a miss simply falls back to a demand
    /// fetch next epoch.
    fn prefetch_complete(&mut self, rt: &Runtime, cmd: u64, status: CmdStatus) {
        let key = self
            .prefetch
            .cmds
            .remove(&cmd)
            .expect("completion for unknown command");
        let (buf, len) = self
            .prefetch
            .inflight
            .remove(&key)
            .expect("prefetch buffer tracked");
        let nid = crate::cache::key_node(key);
        // Prefetched bytes are published into the cache, so they must pass
        // checksum verification like any demand read; a corrupt prefetch is
        // simply dropped (demand reads repair via replicas).
        let verified = match self.shared.redundancy.as_deref().filter(|r| r.verify()) {
            Some(red) if status.is_ok() => {
                let (slba, nblocks, _) = self.read_geometry(nid, key.1, len);
                rt.work(self.shared.cfg.costs.verify_block * nblocks as u64);
                self.tel.iv_verified.add(nblocks as u64);
                let ok = buf.with(|d| {
                    red.verify_blocks(nid, slba, &d[..nblocks as usize * BLOCK_SIZE as usize])
                });
                if !ok {
                    self.tel.iv_mismatches.inc();
                }
                ok
            }
            _ => true,
        };
        if status.is_ok() && verified && !self.shared.cache.contains(key) {
            self.decode_frame(rt, nid, key.1, std::slice::from_ref(&buf));
            self.shared.cache.publish_prefetched(key, vec![buf], len);
        } else {
            if status == CmdStatus::TransportError {
                self.tel.timeouts.inc();
            }
            self.shared.cache.free_raw(buf);
        }
    }

    /// Apply one harvested device completion belonging to the batched
    /// engine's in-flight set. Shared by the poll stage and the synchronous
    /// read path: both drain the same qpairs, so either may harvest the
    /// other's completions — and either way a failed part must be re-queued
    /// for retry, never just routed and forgotten.
    ///
    /// With a [`Redundancy`] attached this is also where integrity is
    /// enforced: delivered bytes are checksum-verified *before* the part
    /// can publish, mismatches and device errors fail straight over to the
    /// next replica, a verified replica copy read-repairs a home extent
    /// that mismatched, and hedge pairs are resolved first-wins.
    #[allow(clippy::too_many_arguments)]
    fn engine_complete(
        &mut self,
        rt: &Runtime,
        cmd: u64,
        idx: u32,
        part: u32,
        attempt: u32,
        replica: u32,
        status: CmdStatus,
    ) {
        // Resolve hedge pairing up front: at most one of the pair delivers.
        let hedge = self.hedges.remove(&cmd);
        if let Some((pcmd, _, _)) = hedge {
            self.hedges.remove(&pcmd);
        }
        let red = self.shared.redundancy.clone();
        let (nid, home_slba, nblocks) = {
            let st = self.epoch.as_ref().expect("no epoch");
            let it = &st.plan.items[idx as usize];
            let (slba, total, _) = self.read_geometry(it.nid, it.offset, it.len);
            let bpc = (self.shared.cfg.chunk_size / BLOCK_SIZE) as u32;
            let start = part * bpc;
            (it.nid, slba + start as u64, (total - start).min(bpc))
        };
        let serving = red
            .as_deref()
            .map(|r| r.route(nid, replica, home_slba).0)
            .unwrap_or(nid);
        // Verify the delivered bytes before anything is published.
        let mut verify_failed = false;
        if status.is_ok() {
            if let Some(red) = red.as_deref().filter(|r| r.verify()) {
                rt.work(self.shared.cfg.costs.verify_block * nblocks as u64);
                self.tel.iv_verified.add(nblocks as u64);
                let buf = self.epoch.as_ref().expect("no epoch").bufs[&idx][part as usize].clone();
                let span = nblocks as usize * BLOCK_SIZE as usize;
                let ok = buf.with(|d| red.verify_blocks(nid, home_slba, &d[..span]));
                if ok {
                    if replica > 0 && self.mismatched.remove(&(idx, part)) {
                        // Read-repair: the home copy failed its checksum
                        // earlier; rewrite it from this verified replica
                        // (clears sticky media faults too).
                        let home = self.shared.targets[nid as usize].clone();
                        buf.with(|d| home.dma_write(home_slba, &d[..span]));
                        self.tel.iv_repairs.inc();
                    } else {
                        self.mismatched.remove(&(idx, part));
                    }
                } else {
                    self.tel.iv_mismatches.inc();
                    self.mismatched.insert((idx, part));
                    verify_failed = true;
                }
            }
        }
        if status.is_ok() && !verify_failed {
            if let Some(red) = red.as_deref().filter(|r| r.replicas > 1) {
                red.record_ok(serving as usize);
            }
            if let Some((pcmd, pdev, secondary)) = hedge {
                // First verified completion wins: cancel the partner on its
                // device (it never DMAs) and drop its in-flight entry.
                if self.inflight.remove(&pcmd).is_some() {
                    self.qpairs[pdev].cancel(pcmd);
                }
                if secondary {
                    self.tel.iv_hedge_wins.inc();
                }
            }
            let st = self.epoch.as_mut().expect("no epoch");
            let item = &mut st.items[idx as usize];
            item.parts_left -= 1;
            if item.parts_left == 0 {
                // Item fully resident: decode its frame (codec datasets;
                // verification above covered the stored bytes), publish it
                // in the sample cache, flip the V field of its samples and
                // offer it to the delivery draw.
                let it = &st.plan.items[idx as usize];
                let (key, len) = (self.shared.rkey(it.nid, it.offset), it.len);
                let (nid, offset) = (it.nid, it.offset);
                let bufs = st.bufs[&idx].clone();
                self.decode_frame(rt, nid, offset, &bufs);
                self.shared.cache.publish(key, bufs, len);
                let st = self.epoch.as_mut().expect("no epoch");
                let it = &st.plan.items[idx as usize];
                for &s in &it.samples {
                    self.shared.dir.set_valid(s, true);
                }
                st.resident_ready.push(idx);
            }
            return;
        }
        // Failed command: device media error, fabric timeout, or delivered
        // bytes that failed their checksum.
        if status == CmdStatus::TransportError {
            self.tel.timeouts.inc();
        }
        if let Some(red) = red.as_deref().filter(|r| r.replicas > 1) {
            red.record_failure(serving as usize, rt.now());
        }
        if let Some((pcmd, _, _)) = hedge {
            if self.inflight.contains_key(&pcmd) {
                // The hedged twin is still racing and becomes the part's
                // sole owner: this loss consumes no retry budget.
                return;
            }
        }
        let failed_attempts = attempt + 1;
        match self.shared.cfg.retry.next_delay(failed_attempts) {
            Some(backoff) => {
                self.tel.retries.inc();
                if red.as_deref().is_some_and(|r| r.replicas > 1) {
                    // Fail straight over to the next replica in rotation —
                    // another copy can serve *now*, so no backoff.
                    self.tel.iv_failovers.inc();
                    let st = self.epoch.as_mut().expect("no epoch");
                    st.pending_parts
                        .push_back((idx, part, failed_attempts, replica + 1));
                } else {
                    let mut ready_at = rt.now() + backoff;
                    if let Some(dl) = self.current_deadline {
                        // Never park a retry past the batch deadline: the
                        // caller is about to give up waiting anyway.
                        ready_at = ready_at.min(dl.max(rt.now()));
                    }
                    let st = self.epoch.as_mut().expect("no epoch");
                    st.delay_seq += 1;
                    st.delayed_parts.push(Reverse((
                        ready_at,
                        st.delay_seq,
                        idx,
                        part,
                        failed_attempts,
                        replica,
                    )));
                }
            }
            None => {
                let chunk_off =
                    self.epoch.as_ref().expect("no epoch").plan.items[idx as usize].offset;
                self.failed
                    .get_or_insert(if self.mismatched.contains(&(idx, part)) {
                        DlfsError::Corrupt {
                            chunk: chunk_off,
                            tried: failed_attempts,
                            cause: if status.is_ok() {
                                CorruptCause::Checksum
                            } else {
                                CorruptCause::Io(match status {
                                    CmdStatus::TransportError => IoFailure::Timeout,
                                    _ => IoFailure::Media,
                                })
                            },
                        }
                    } else {
                        DlfsError::Io {
                            target: nid.into(),
                            attempts: failed_attempts,
                            cause: match status {
                                CmdStatus::TransportError => IoFailure::Timeout,
                                _ => IoFailure::Media,
                            },
                        }
                    });
            }
        }
    }

    /// Poll stage: harvest completions across all qpairs (the shared
    /// completion queue consolidates this into one pass).
    fn poll(&mut self, rt: &Runtime) -> usize {
        let costs = self.shared.cfg.costs.clone();
        let t0 = rt.now();
        self.tel.poll_spins.inc();
        if self.shared.cfg.shared_completion_queue {
            rt.work(costs.poll_iteration);
        } else {
            rt.work(costs.poll_iteration * self.qpairs.len() as u64);
        }
        let mut harvested = 0;
        for q in 0..self.qpairs.len() {
            // Event-driven sweep: only queues whose earliest completion is
            // due get a harvest pass. The check is live (per-completion
            // work advances the clock mid-sweep, so a later queue may
            // become due during this pass) and in index order — both are
            // load-bearing for determinism. An empty harvest charges and
            // records nothing, so the skip is unobservable.
            match self.qpairs[q].next_completion_at() {
                Some(t) if t <= rt.now() => {}
                _ => continue,
            }
            for comp in self.qpairs[q].process_completions(rt, usize::MAX) {
                rt.work(costs.per_completion);
                self.tel.completions.inc();
                harvested += 1;
                match self.inflight.remove(&comp.id) {
                    Some((idx, part, attempt, replica)) => {
                        self.engine_complete(rt, comp.id, idx, part, attempt, replica, comp.status);
                    }
                    None => self.prefetch_complete(rt, comp.id, comp.status),
                }
            }
        }
        if harvested == 0 {
            self.tel.scq_empty_polls.inc();
        } else {
            self.tel.scq_drains.inc();
            self.tel.scq_drain_batch.record(harvested as u64);
        }
        self.tel.poll_ns.record_dur(rt.now() - t0);
        harvested
    }

    /// Copy-dispatch stage: draw samples from random resident items and
    /// hand them to the copy pool. `tag_base` numbers this call's slots.
    fn dispatch(
        &mut self,
        rt: &Runtime,
        budget: usize,
        slots_used: usize,
        done_tx: &simkit::chan::Sender<CopyDone>,
    ) -> usize {
        let costs = self.shared.cfg.costs.clone();
        let mut dispatched = 0;
        while dispatched < budget {
            let (idx, sample, slot) = {
                let st = self.epoch.as_mut().expect("no epoch");
                if st.resident_ready.is_empty() {
                    break;
                }
                let pick = st.rng.below(st.resident_ready.len() as u64) as usize;
                let idx = st.resident_ready[pick];
                let item = &mut st.items[idx as usize];
                let sample = st.plan.items[idx as usize].samples[item.dispatched as usize];
                item.dispatched += 1;
                if item.dispatched == item.samples_total {
                    st.resident_ready.swap_remove(pick);
                }
                st.total_dispatched += 1;
                (idx, sample, (slots_used + dispatched) as u64)
            };
            let entry = self.shared.dir.entry(sample);
            let segments = {
                let st = self.epoch.as_ref().expect("no epoch");
                segments_for(
                    &st.plan.items[idx as usize],
                    st.items[idx as usize].base,
                    &st.bufs[&idx],
                    self.shared.cfg.chunk_size as usize,
                    entry,
                )
            };
            rt.work(costs.frontend_per_sample + costs.copy_dispatch);
            debug_assert_eq!(self.copy_dispatch_at.len(), slot as usize);
            self.copy_dispatch_at.push(rt.now());
            self.shared.copy.submit(CopyJob {
                tag: (idx as u64) << 32 | slot,
                sample,
                segments,
                done: done_tx.clone(),
            });
            dispatched += 1;
        }
        dispatched
    }

    /// Account one delivered sample of `idx`; release its item when fully
    /// drained. `EpochScoped`: chunks go back to the pool (or, if
    /// zero-copy samples still pin them, when the last pin drops).
    /// `CrossEpoch`: the range joins the evictable LRU tail and may serve
    /// the next epoch without device I/O.
    fn account_delivery(&mut self, idx: u32) {
        let st = self.epoch.as_mut().expect("no epoch");
        let item = &mut st.items[idx as usize];
        item.copies_done += 1;
        if item.copies_done == item.samples_total {
            st.bufs.remove(&idx);
            let it = &st.plan.items[idx as usize];
            // The engine still holds this range (never released), so it
            // cannot have been evicted; a miss means an eviction or
            // teardown won a race and already reclaimed the chunks.
            let _ = self
                .shared
                .cache
                .release(self.shared.rkey(it.nid, it.offset));
            st.open_items -= 1;
            for &s in &it.samples {
                self.shared.dir.set_valid(s, false);
            }
        }
    }

    /// Account a finished copy; retire its item when fully drained.
    fn finish_copy(&mut self, rt: &Runtime, done: &CopyDone) -> usize {
        let idx = (done.tag >> 32) as u32;
        let slot = (done.tag & 0xFFFF_FFFF) as usize;
        self.account_delivery(idx);
        self.tel.samples_delivered.inc();
        self.tel.bytes_delivered.add(done.data.len() as u64);
        self.tel
            .copy_ns
            .record_dur(rt.now() - self.copy_dispatch_at[slot]);
        slot
    }

    /// Execute a [`ReadRequest`] against the current epoch plan: the one
    /// entry point unifying the copied and zero-copy delivery paths, and
    /// the only batched-read API (the interim `bread`/`bread_zero_copy`
    /// wrappers are gone).
    ///
    /// Returns `EpochExhausted` once the plan is drained and `NoSequence`
    /// before the first [`DlfsIo::sequence`]. With a deadline, the batch
    /// may come back shorter than `req.n` (but never torn: samples already
    /// handed to the copy threads always drain).
    pub fn submit(&mut self, rt: &Runtime, req: &ReadRequest) -> Result<Completions, DlfsError> {
        if self.epoch.is_none() {
            return Err(DlfsError::NoSequence);
        }
        if let Some(e) = &self.failed {
            // A part of this epoch is permanently lost; the plan cannot
            // complete until `sequence` installs a fresh one.
            return Err(e.clone());
        }
        self.current_deadline = req.deadline;
        let want = req.n.min(self.remaining());
        if want == 0 {
            return Err(DlfsError::EpochExhausted);
        }
        self.tel.batches.inc();
        // QoS admission (multi-tenant mounts only): token-bucket throttle
        // then a WFQ device-slot grant, charged to the request's tenant —
        // the handle's unless the request overrides it. The slot is held
        // for the whole batch and released below even on error.
        let qos = self.shared.qos.clone();
        let grant = match &qos {
            Some(q) => {
                let tenant = req.tenant.unwrap_or(self.shared.tenant);
                Some(q.admit(rt, tenant, q.batch_cost(want))?)
            }
            None => None,
        };
        let outcome = if req.offload {
            self.run_offload(rt, want, req).map(Completions::copied)
        } else {
            match req.delivery {
                Delivery::Copied => self.run_copied(rt, want, req).map(Completions::copied),
                Delivery::ZeroCopy => self
                    .run_zero_copy(rt, want, req)
                    .map(Completions::zero_copy),
            }
        };
        if let Some(q) = &qos {
            let delivered = outcome.as_ref().map(|b| b.len()).unwrap_or(0);
            q.complete(
                grant.expect("granted above"),
                delivered as u64,
                q.batch_cost(delivered),
            );
        }
        let batch = outcome?;
        if batch.len() < want {
            self.tel.deadline_misses.inc();
        }
        Ok(batch)
    }

    /// The copied-delivery engine loop (prep → post → poll → copy).
    fn run_copied(
        &mut self,
        rt: &Runtime,
        want: usize,
        req: &ReadRequest,
    ) -> Result<Vec<(u32, Vec<u8>)>, DlfsError> {
        let (done_tx, done_rx) = rt.channel::<CopyDone>(None);
        let mut results: Vec<Option<(u32, Vec<u8>)>> = vec![None; want];
        let mut dispatched = 0usize;
        let mut received = 0usize;
        self.copy_dispatch_at.clear();

        while received < want {
            if self.failed.is_some() {
                // Fatal I/O failure: drain the copies already dispatched
                // (never tear a sample), then surface the error.
                while received < dispatched {
                    let done = done_rx.recv().map_err(|_| DlfsError::CacheExhausted)?;
                    self.finish_copy(rt, &done);
                    received += 1;
                }
                return Err(self.failed.clone().expect("checked above"));
            }
            let expired = req.deadline.is_some_and(|dl| rt.now() >= dl);
            if expired && received == dispatched {
                // Past the deadline with nothing outstanding: return short.
                break;
            }
            let mut progress = 0;
            progress += self.pump(rt);
            progress += self.poll(rt);
            if !expired {
                let newly = self.dispatch(rt, want - dispatched, dispatched, &done_tx);
                dispatched += newly;
                progress += newly;
            }
            // Collect finished copies without blocking.
            while let Ok(done) = done_rx.try_recv() {
                let slot = self.finish_copy(rt, &done);
                results[slot] = Some((done.sample, done.data));
                received += 1;
                progress += 1;
            }
            if received >= want {
                break;
            }
            if progress == 0 {
                if dispatched > received {
                    // Copies outstanding: block on the copy pool.
                    let done = done_rx.recv().map_err(|_| DlfsError::CacheExhausted)?;
                    let slot = self.finish_copy(rt, &done);
                    results[slot] = Some((done.sample, done.data));
                    received += 1;
                    continue;
                }
                if expired {
                    break;
                }
                // Waiting on device completions: this is the busy-poll loop
                // the Fig. 7b experiment adds application computation to —
                // the compute overlaps with the in-flight SPDK requests.
                if !req.inject_compute.is_zero() {
                    rt.work(req.inject_compute);
                    continue;
                }
                // Waiting on the devices: spin the poll loop forward to the
                // next event — a completion, or a delayed part's retry
                // instant (busy polling, so it's CPU time).
                match self.next_engine_event() {
                    Some(t) => self.advance_to(rt, t),
                    None => {
                        panic!(
                            "dlfs submit stalled: nothing in flight, nothing \
                             deliverable (reader {})",
                            self.shared.reader_id
                        );
                    }
                }
            }
        }
        Ok(results.into_iter().flatten().collect())
    }

    /// The storage-side offload path (`ReadRequest::offload`): consume the
    /// next `want` samples of the plan in item order, group them by home
    /// storage node, and issue ONE offload exchange per node — the target
    /// reads the stored frames, verifies and decodes them locally (both
    /// charged to the target's compute pool, not this reader), and ships a
    /// single dense response carrying exactly the requested sample bytes.
    /// Bypasses the qpairs and the sample cache entirely; the per-item
    /// dispatch cursors it shares with the engine keep delivery
    /// exactly-once even if the engine path served part of this epoch.
    /// Deadlines are not honored: the batch is a single remote exchange
    /// with nothing to cut short client-side.
    fn run_offload(
        &mut self,
        rt: &Runtime,
        want: usize,
        req: &ReadRequest,
    ) -> Result<Vec<(u32, Vec<u8>)>, DlfsError> {
        if req.delivery != Delivery::Copied {
            return Err(DlfsError::Config(
                "offload batches are assembled storage-side; only copied \
                 delivery can cross the fabric"
                    .into(),
            ));
        }
        if !self.shared.cfg.offload {
            return Err(DlfsError::Config(
                "ReadRequest::offload requires DlfsConfig { offload: true, .. }".into(),
            ));
        }
        // 1. Claim the next `want` samples, walking items in plan order.
        let mut taken: Vec<(u16, u64, u64, Vec<u32>)> = Vec::new();
        {
            let st = self.epoch.as_mut().expect("no epoch");
            let mut left = want;
            let mut idx = 0usize;
            while left > 0 && idx < st.items.len() {
                let done = st.items[idx].dispatched;
                let take = (st.items[idx].samples_total - done).min(left as u32);
                if take == 0 {
                    idx += 1;
                    continue;
                }
                let it = &st.plan.items[idx];
                let ids = it.samples[done as usize..(done + take) as usize].to_vec();
                st.items[idx].dispatched += take;
                st.total_dispatched += take as usize;
                left -= take as usize;
                taken.push((it.nid, it.offset, it.len, ids));
            }
        }
        // 2. One dense request per storage node touched by the batch. The
        //    target is charged what the client no longer pays: block
        //    verification and frame decode, per extent, on its compute
        //    pool.
        let costs = self.shared.cfg.costs.clone();
        let verify = self
            .shared
            .redundancy
            .as_deref()
            .is_some_and(|r| r.verify());
        let mut per_node: BTreeMap<u16, (Vec<OffloadExtent>, u64)> = BTreeMap::new();
        for (nid, offset, len, ids) in &taken {
            let (slba, nblocks, _) = self.read_geometry(*nid, *offset, *len);
            let raw_len = match self.shared.codec.as_deref() {
                Some(t) => {
                    let chunk = self.shared.cfg.chunk_size;
                    let f = t.per_node[*nid as usize].frame_of(chunk, *offset);
                    t.per_node[*nid as usize].raw_len(chunk, f) as u64
                }
                None => *len,
            };
            let mut compute = Dur::ZERO;
            if verify {
                compute += costs.verify_block * nblocks as u64;
            }
            if self.shared.codec.is_some() {
                compute += costs.decode(raw_len);
            }
            let slot = per_node.entry(*nid).or_default();
            slot.0.push(OffloadExtent {
                slba,
                nblocks,
                compute,
            });
            slot.1 += ids
                .iter()
                .map(|&id| self.shared.dir.entry(id).len())
                .sum::<u64>();
        }
        // 3. Timing: one request/process/respond exchange per node, all
        //    concurrent; this reader parks until the last dense response
        //    lands.
        let mut done_at = rt.now();
        for (nid, (extents, payload)) in &per_node {
            let t = self.shared.targets[*nid as usize].reserve_offload(rt.now(), extents, *payload);
            done_at = done_at.max(t);
            self.tel.of_requests.inc();
            self.tel.of_wire_bytes.add(
                CAPSULE_BYTES + extents.len() as u64 * DESCRIPTOR_BYTES + payload + RESPONSE_BYTES,
            );
        }
        // 4. Functional bytes: read + verify (failover / read-repair) +
        //    decode each stored frame, then slice out the samples.
        let mut out = Vec::with_capacity(want);
        for (nid, offset, len, ids) in &taken {
            let (raw, base) = match self.offload_item_bytes(*nid, *offset, *len) {
                Ok(v) => v,
                Err(e) => {
                    // A frame no replica can serve: the plan can no longer
                    // complete (same sticky semantics as the engine path).
                    self.failed = Some(e.clone());
                    return Err(e);
                }
            };
            for &id in ids {
                let entry = self.shared.dir.entry(id);
                let at = (entry.offset() - base) as usize;
                out.push((id, raw[at..at + entry.len() as usize].to_vec()));
                self.tel.samples_delivered.inc();
                self.tel.bytes_delivered.add(entry.len());
                self.tel.of_samples.inc();
            }
        }
        self.advance_to(rt, done_at);
        Ok(out)
    }

    /// Read one plan item's stored range for the offload path — verified
    /// against the integrity tables with replica failover and read-repair
    /// (all *before* decode, covering the stored encoded bytes), then
    /// decoded. Returns the raw bytes and the node byte offset they start
    /// at. Purely functional: the time was already charged by
    /// `reserve_offload` (extent reads + target-side verify/decode).
    fn offload_item_bytes(
        &mut self,
        nid: u16,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<u8>, u64), DlfsError> {
        let (slba, nblocks, _) = self.read_geometry(nid, offset, len);
        let red = self.shared.redundancy.clone();
        let replicas = red.as_deref().map(|r| r.replicas).unwrap_or(1);
        let mut data = vec![0u8; nblocks as usize * BLOCK_SIZE as usize];
        let mut attempt = 0u32;
        loop {
            let (serving, s_slba) = match red.as_deref() {
                Some(r) if r.replicas > 1 => r.route(nid, attempt, slba),
                _ => (nid, slba),
            };
            self.shared.targets[serving as usize].dma_read(s_slba, &mut data);
            let ok = match red.as_deref().filter(|r| r.verify()) {
                Some(r) => {
                    self.tel.iv_verified.add(nblocks as u64);
                    r.verify_blocks(nid, slba, &data)
                }
                None => true,
            };
            if ok {
                if attempt > 0 {
                    // A replica served after the home copy failed
                    // verification: read-repair the home extent.
                    self.shared.targets[nid as usize].dma_write(slba, &data);
                    self.tel.iv_repairs.inc();
                }
                break;
            }
            self.tel.iv_mismatches.inc();
            attempt += 1;
            if attempt >= replicas {
                return Err(DlfsError::Corrupt {
                    chunk: slba * BLOCK_SIZE,
                    tried: attempt,
                    cause: CorruptCause::Checksum,
                });
            }
            self.tel.iv_failovers.inc();
        }
        let mut base = slba * BLOCK_SIZE;
        if let Some(tables) = self.shared.codec.as_deref() {
            let chunk = self.shared.cfg.chunk_size;
            let frames = &tables.per_node[nid as usize];
            let f = frames.frame_of(chunk, offset);
            let enc_len = frames.lens[f] as usize;
            let raw_len = frames.raw_len(chunk, f);
            self.tel.codec_bytes_in.add(enc_len as u64);
            self.tel.codec_bytes_out.add(raw_len as u64);
            if enc_len == raw_len {
                data.truncate(raw_len);
            } else {
                data = tables.kind.codec().decode(&data[..enc_len], raw_len);
            }
            base = frames.base + f as u64 * chunk;
        }
        Ok((data, base))
    }

    /// Earliest instant at which the engine can make progress again: a
    /// device completion or a delayed retry becoming due.
    fn next_engine_event(&self) -> Option<Time> {
        // The completion clock already holds the earliest instant across
        // every qpair (validated lazily against the authoritative per-qpair
        // state), so this is one heap peek instead of a scan.
        let next_dev = self
            .clock
            .next_due(|tag| self.qpairs[tag].next_completion_at());
        let next_retry = self
            .epoch
            .as_ref()
            .and_then(|st| st.delayed_parts.peek())
            .map(|Reverse((t, ..))| *t);
        // A pending hedge is an engine event too: the reactor must wake at
        // its due instant, not sleep through to the (slow) primary.
        let next_hedge = if self.shared.cfg.hedge_reads {
            self.hedge_due.peek().map(|Reverse((t, _))| *t)
        } else {
            None
        };
        [next_dev, next_retry, next_hedge]
            .into_iter()
            .flatten()
            .min()
    }

    /// Advance the calling thread to `t`, the next engine event. Counted
    /// as a reactor wakeup. While any qpair has commands in flight this is
    /// hot-polling (busy CPU, exactly as before); with *nothing* in flight
    /// anywhere — a pure retry-backoff wait — the reactor parks the thread
    /// instead (idle). Virtual time advances identically either way; only
    /// the busy/idle ledger differs, and a parked wait can never coincide
    /// with in-flight commands by construction.
    fn advance_to(&mut self, rt: &Runtime, t: Time) {
        let now = rt.now();
        if t <= now {
            return;
        }
        self.rstats.wakeups.inc();
        if self.qpairs.iter().all(|q| q.outstanding() == 0) {
            // Nothing in flight: the reactor parks. Spend the idle gap on a
            // slice of background scrubbing first (untimed bookkeeping — it
            // models a housekeeping thread, not reactor CPU).
            if self.shared.cfg.scrub {
                self.scrub_blocks(SCRUB_GAP_BLOCKS);
            }
            if self.rebuild.is_some() {
                let gap = self.shared.cfg.rebuild_gap_blocks;
                self.rebuild_blocks(gap);
            }
            self.rstats.park(t - now);
            rt.sleep_until(t);
        } else {
            rt.work_until(t);
        }
    }

    /// Walk `budget` data blocks of the scrub cursor, verifying each block
    /// against the integrity tables (and probing for latent media faults),
    /// repairing bad blocks from the first healthy replica. Returns the
    /// number of blocks scrubbed. No-op without checksums.
    fn scrub_blocks(&mut self, budget: u64) -> u64 {
        let Some(red) = self.shared.redundancy.clone() else {
            return 0;
        };
        if !red.verify() {
            return 0;
        }
        let nodes = self.shared.targets.len();
        let mut scrubbed = 0u64;
        let mut hops = 0usize;
        let mut left = budget;
        while left > 0 && hops <= nodes {
            let (n, blk) = self.scrub_cursor;
            let total = red.data_blocks(n as u16);
            if blk >= total {
                self.scrub_cursor = ((n + 1) % nodes, 0);
                hops += 1;
                continue;
            }
            let run = left.min(total - blk);
            let base_blk = red.slots[n].0 / BLOCK_SIZE + blk;
            let mut data = vec![0u8; (run * BLOCK_SIZE) as usize];
            self.shared.targets[n].dma_read(base_blk, &mut data);
            for i in 0..run {
                let slba = base_blk + i;
                let span = &data[(i * BLOCK_SIZE) as usize..][..BLOCK_SIZE as usize];
                let good = red.verify_blocks(n as u16, slba, span)
                    && !self.shared.targets[n].probe_extent(slba, 1);
                if !good {
                    self.scrub_repair(&red, n, slba);
                }
            }
            scrubbed += run;
            left -= run;
            self.scrub_cursor = (n, blk + run);
        }
        self.tel.iv_scrubbed.add(scrubbed);
        scrubbed
    }

    /// Rewrite one bad home block from the first replica whose copy
    /// verifies. Unrepairable blocks (no healthy copy) are left for the
    /// read path to surface as [`DlfsError::Corrupt`].
    fn scrub_repair(&mut self, red: &Redundancy, n: usize, slba: u64) {
        for r in 1..red.replicas {
            let (peer, pslba) = red.route(n as u16, r, slba);
            let src = &self.shared.targets[peer as usize];
            if src.probe_extent(pslba, 1) {
                continue;
            }
            let mut blk = vec![0u8; BLOCK_SIZE as usize];
            src.dma_read(pslba, &mut blk);
            if !red.verify_blocks(n as u16, slba, &blk) {
                continue;
            }
            self.shared.targets[n].dma_write(slba, &blk);
            self.tel.iv_repairs.inc();
            return;
        }
    }

    /// One full background-scrub sweep over every node's data region:
    /// verify every covered block and repair what a healthy replica can
    /// provide. Returns the number of blocks scrubbed. Exposed for tests
    /// and the fsck/CI tooling; the engine otherwise scrubs incrementally
    /// during idle reactor gaps (config `scrub`).
    pub fn scrub_pass(&mut self) -> u64 {
        let Some(red) = self.shared.redundancy.as_deref() else {
            return 0;
        };
        let total: u64 = (0..self.shared.targets.len())
            .map(|n| red.data_blocks(n as u16))
            .sum();
        if total == 0 {
            return 0;
        }
        self.scrub_cursor = (0, 0);
        self.scrub_blocks(total)
    }

    /// Start automated re-replication of storage node `node` after a
    /// permanent loss: enumerate every replica slot the node hosted
    /// ([`RebuildPlan::for_dead_node`]) and copy each block back from a
    /// surviving verified replica, `rebuild_gap_blocks` per idle reactor
    /// gap (call [`DlfsIo::drive_rebuild`] to finish synchronously). The
    /// replacement device — the revived node, or a fresh one mounted under
    /// the same index — must be attached and serving writes first. Returns
    /// the total blocks to rebuild. A rebuild needs surviving copies to
    /// read from (`replicas >= 2`) and a membership view to rejoin the
    /// node into afterwards — asking for one on an instance missing either
    /// is a typed configuration error, not a silent no-op.
    pub fn begin_rebuild(&mut self, node: u16) -> Result<u64, DlfsError> {
        let Some(red) = self.shared.redundancy.as_deref() else {
            return Err(DlfsError::Config(
                "rebuild requires redundancy: configure replicas >= 2 and a \
                 membership policy (fail_dead_after)"
                    .into(),
            ));
        };
        if red.replicas < 2 {
            return Err(DlfsError::Config(format!(
                "rebuild of storage node {node} requires replicas >= 2 (have \
                 {}): a lone copy has no surviving source to rebuild from",
                red.replicas
            )));
        }
        if red.membership.is_none() {
            return Err(DlfsError::Config(format!(
                "rebuild of storage node {node} requires a membership policy: \
                 set fail_dead_after so the rebuilt node can be declared Dead \
                 and rejoined"
            )));
        }
        let blocks_of: Vec<u64> = (0..self.shared.targets.len())
            .map(|h| match self.shared.layouts.as_deref() {
                Some(l) => l[h].data_bytes.div_ceil(BLOCK_SIZE),
                None => red.data_blocks(h as u16),
            })
            .collect();
        let plan = RebuildPlan::for_dead_node(red, node, &blocks_of);
        let total = plan.total_blocks;
        self.tel.rb_at_risk.set(self.chunks_at_risk(total) as i64);
        self.rebuild = Some(RebuildState {
            plan,
            ext: 0,
            blk: 0,
            walked: 0,
            failed: 0,
        });
        Ok(total)
    }

    /// Is a node rebuild still in flight?
    pub fn rebuild_active(&self) -> bool {
        self.rebuild.is_some()
    }

    /// Blocks the in-flight rebuild has not walked yet (0 when idle).
    pub fn rebuild_remaining(&self) -> u64 {
        self.rebuild
            .as_ref()
            .map(|r| r.plan.total_blocks - r.walked)
            .unwrap_or(0)
    }

    /// Walk up to `budget` blocks of the in-flight rebuild — the same
    /// slice the engine takes per idle reactor gap, exposed so tests and
    /// the `ext_rebuild` bench can interleave rebuild progress with
    /// foreground work (or mid-rebuild faults) at a controlled pace.
    pub fn rebuild_step(&mut self, budget: u64) -> u64 {
        self.rebuild_blocks(budget)
    }

    /// Run the in-flight rebuild to completion in one call (tests, the
    /// `ext_rebuild` bench, and operators who want redundancy back *now*
    /// rather than trickled through idle gaps). Returns blocks walked.
    pub fn drive_rebuild(&mut self) -> u64 {
        let mut done = 0;
        while self.rebuild.is_some() {
            done += self.rebuild_blocks(u64::MAX);
        }
        done
    }

    /// Chunks not yet at full redundancy when `blocks` blocks are missing.
    fn chunks_at_risk(&self, blocks: u64) -> u64 {
        let per_chunk = (self.shared.cfg.chunk_size / BLOCK_SIZE).max(1);
        blocks.div_ceil(per_chunk)
    }

    /// Walk up to `budget` blocks of the in-flight rebuild: verify what
    /// the replacement device already holds (a restarted node keeps its
    /// media — catch-up resync skips clean blocks), copy the rest from the
    /// first surviving replica whose bytes verify, and finish with the
    /// on-device layout restore + membership rejoin once the plan is
    /// exhausted. Untimed bookkeeping, same as the scrubber: it models a
    /// housekeeping thread running in reactor idle gaps, not reactor CPU.
    fn rebuild_blocks(&mut self, budget: u64) -> u64 {
        let Some(red) = self.shared.redundancy.clone() else {
            self.rebuild = None;
            return 0;
        };
        let Some(mut rb) = self.rebuild.take() else {
            return 0;
        };
        let mut left = budget;
        let mut walked = 0u64;
        while left > 0 {
            let Some(ext) = rb.plan.extents.get(rb.ext).copied() else {
                break;
            };
            if rb.blk >= ext.blocks {
                rb.ext += 1;
                rb.blk = 0;
                continue;
            }
            let run = left.min(ext.blocks - rb.blk).min(128);
            let home_base_blk = red.slots[ext.home as usize].0 / BLOCK_SIZE;
            for i in 0..run {
                let home_blk = home_base_blk + rb.blk + i;
                let (dt, dslba) = red.route(ext.home, ext.slot_r, home_blk);
                debug_assert_eq!(dt, rb.plan.node);
                let dest = self.shared.targets[dt as usize].clone();
                if red.verify() {
                    let mut have = vec![0u8; BLOCK_SIZE as usize];
                    dest.dma_read(dslba, &mut have);
                    if red.verify_blocks(ext.home, home_blk, &have) && !dest.probe_extent(dslba, 1)
                    {
                        self.tel.rb_clean.inc();
                        continue;
                    }
                }
                let mut copied = false;
                for s in rb.plan.sources(&ext, &red) {
                    let (st, sslba) = red.route(ext.home, s, home_blk);
                    if st == rb.plan.node || red.is_dead(st as usize) {
                        continue;
                    }
                    let src = &self.shared.targets[st as usize];
                    if src.probe_extent(sslba, 1) {
                        continue;
                    }
                    let mut blk = vec![0u8; BLOCK_SIZE as usize];
                    src.dma_read(sslba, &mut blk);
                    if !red.verify_blocks(ext.home, home_blk, &blk) {
                        continue;
                    }
                    dest.dma_write(dslba, &blk);
                    copied = true;
                    break;
                }
                if copied {
                    self.tel.rb_blocks.inc();
                } else {
                    rb.failed += 1;
                    self.tel.rb_failed.inc();
                }
            }
            rb.blk += run;
            rb.walked += run;
            walked += run;
            left -= run;
        }
        while rb
            .plan
            .extents
            .get(rb.ext)
            .is_some_and(|e| rb.blk >= e.blocks)
        {
            rb.ext += 1;
            rb.blk = 0;
        }
        let remaining = rb.plan.total_blocks - rb.walked;
        self.tel
            .rb_at_risk
            .set(self.chunks_at_risk(remaining + rb.failed) as i64);
        if rb.ext >= rb.plan.extents.len() {
            self.rebuild_finish(&red, rb.plan.node, rb.failed);
        } else {
            self.rebuild = Some(rb);
        }
        walked
    }

    /// Final pass of a completed rebuild: on persistent instances, restore
    /// the replacement device's metadata region (reconstructed from the
    /// sample directory, payload checksums re-hashed from the rebuilt
    /// bytes), integrity table, and committed superblock — a fresh device
    /// comes out `fsck`-clean, indistinguishable from the import, except
    /// for the checkpoint region, whose stream died with the old node (the
    /// fsck checkpoint walk treats the zeroed region as an empty stream).
    /// Only a fully successful rebuild rejoins the node into the
    /// membership view; failed blocks leave it Dead for another attempt.
    fn rebuild_finish(&mut self, red: &Redundancy, node: u16, failed: u64) {
        if let Some(layouts) = self.shared.layouts.clone() {
            let dest = self.shared.targets[node as usize].clone();
            let mut sb = layouts[node as usize].clone();
            let mut records = Vec::with_capacity(sb.node_samples as usize);
            for &id in self.shared.dir.samples_on(node) {
                let e = self.shared.dir.entry(id);
                let (unit1, unit2) = e.raw();
                records.push(MetaRecord {
                    id,
                    unit1,
                    unit2,
                    payload_checksum: fnv1a(&self.read_back(&dest, e.offset(), e.len())),
                });
            }
            let meta = encode_meta(&records);
            debug_assert_eq!(meta.len() as u64, sb.meta_bytes);
            if !meta.is_empty() {
                dest.dma_write(sb.meta_base / BLOCK_SIZE, &meta);
            }
            if sb.integrity_bytes > 0 {
                let enc = encode_integrity(&red.sums[node as usize]);
                debug_assert_eq!(enc.len() as u64, sb.integrity_bytes);
                dest.dma_write(sb.integrity_base / BLOCK_SIZE, &enc);
            }
            if sb.codec_table_bytes > 0 {
                if let Some(tables) = self.shared.codec.as_deref() {
                    // Restore the per-frame encoded-length table; the data
                    // blocks were copied back verbatim (stored/encoded
                    // bytes), so the table written at import still
                    // describes them exactly.
                    let table = encode_codec_table(&tables.per_node[node as usize].lens);
                    debug_assert_eq!(table.len() as u64, sb.codec_table_bytes);
                    dest.dma_write(sb.codec_base() / BLOCK_SIZE, &table);
                }
            }
            sb.meta_checksum = fnv1a(&meta);
            sb.committed = true;
            dest.dma_write(0, &sb.encode());
        }
        if failed == 0 {
            // `begin_rebuild` refuses to start without a membership policy,
            // so the rejoin cannot fail here.
            let r = red.rejoin(node as usize);
            debug_assert!(r.is_ok(), "rebuild ran without membership");
        }
        self.tel.rb_completed.inc();
        self.tel.rb_at_risk.set(self.chunks_at_risk(failed) as i64);
    }

    /// Read `len` bytes at absolute device byte offset `off` (block math
    /// for the payload re-hash of [`DlfsIo::rebuild_finish`]).
    fn read_back(&self, dev: &Arc<dyn NvmeTarget>, off: u64, len: u64) -> Vec<u8> {
        let first = off / BLOCK_SIZE;
        let end = (off + len).div_ceil(BLOCK_SIZE);
        let mut buf = vec![0u8; ((end - first) * BLOCK_SIZE) as usize];
        dev.dma_read(first, &mut buf);
        let at = (off - first * BLOCK_SIZE) as usize;
        buf[at..at + len as usize].to_vec()
    }

    /// The zero-copy engine loop: prep → post → poll, then pin + hand out
    /// references (no copy stage).
    fn run_zero_copy(
        &mut self,
        rt: &Runtime,
        want: usize,
        req: &ReadRequest,
    ) -> Result<Vec<ZeroCopySample>, DlfsError> {
        let costs = self.shared.cfg.costs.clone();
        let mut out: Vec<ZeroCopySample> = Vec::with_capacity(want);
        // One cache pin per fetch item, shared by every sample delivered
        // from it in this call (an `Arc` clone per sample instead of a
        // buffer-list clone per sample). Pin counts still balance: each
        // guard releases the one pin it took when its last sample drops.
        let mut item_pins: HashMap<u32, Arc<PinGuard>> = HashMap::new();
        while out.len() < want {
            if let Some(e) = &self.failed {
                // Zero-copy delivery has nothing in the copy pool to drain.
                return Err(e.clone());
            }
            if req.deadline.is_some_and(|dl| rt.now() >= dl) {
                // Zero-copy delivery is immediate, so past the deadline
                // there is nothing left to drain: return short.
                break;
            }
            let mut progress = 0;
            progress += self.pump(rt);
            progress += self.poll(rt);
            // Deliver directly from resident items.
            loop {
                if out.len() >= want {
                    break;
                }
                let (idx, sample) = {
                    let st = self.epoch.as_mut().expect("no epoch");
                    if st.resident_ready.is_empty() {
                        break;
                    }
                    let pick = st.rng.below(st.resident_ready.len() as u64) as usize;
                    let idx = st.resident_ready[pick];
                    let item = &mut st.items[idx as usize];
                    let sample = st.plan.items[idx as usize].samples[item.dispatched as usize];
                    item.dispatched += 1;
                    if item.dispatched == item.samples_total {
                        st.resident_ready.swap_remove(pick);
                    }
                    st.total_dispatched += 1;
                    (idx, sample)
                };
                let entry = self.shared.dir.entry(sample);
                let (key, segments) = {
                    let st = self.epoch.as_ref().expect("no epoch");
                    let it = &st.plan.items[idx as usize];
                    (
                        self.shared.rkey(it.nid, it.offset),
                        segments_for(
                            it,
                            st.items[idx as usize].base,
                            &st.bufs[&idx],
                            self.shared.cfg.chunk_size as usize,
                            entry,
                        ),
                    )
                };
                // Pin the range for the samples' lifetime; no memcpy.
                let pin = match item_pins.get(&idx) {
                    Some(guard) => Pin::Shared(guard.clone()),
                    None => {
                        let (gen, _, _) = self
                            .shared
                            .cache
                            .pin_key(key)
                            .expect("resident range pinnable");
                        let guard = PinGuard::new(self.shared.cache.clone(), key, gen);
                        item_pins.insert(idx, guard.clone());
                        Pin::Shared(guard)
                    }
                };
                rt.work(costs.frontend_per_sample);
                self.tel.cache_pins.inc();
                self.tel.samples_delivered.inc();
                self.tel.bytes_delivered.add(entry.len());
                out.push(ZeroCopySample::new(sample, segments, pin));
                self.account_delivery(idx);
                progress += 1;
            }
            if out.len() >= want {
                break;
            }
            if progress == 0 {
                if !req.inject_compute.is_zero() {
                    rt.work(req.inject_compute);
                    continue;
                }
                match self.next_engine_event() {
                    Some(t) => self.advance_to(rt, t),
                    None => panic!(
                        "dlfs zero-copy submit stalled (reader {})",
                        self.shared.reader_id
                    ),
                }
            }
        }
        Ok(out)
    }

    /// `dlfs_read` by name: synchronous single-sample read (the DLFS-Base
    /// configuration of Fig. 6). Checks the V field, then fetches the
    /// sample's covering blocks and waits for completion.
    pub fn read(&mut self, rt: &Runtime, name: &str) -> Result<Vec<u8>, DlfsError> {
        let costs = self.shared.cfg.costs.clone();
        let (id, entry) = self
            .shared
            .dir
            .lookup(rt, &costs, name)
            .ok_or_else(|| DlfsError::NotFound(name.to_string()))?;
        let _ = id;
        self.read_entry(rt, entry, None)
    }

    /// `dlfs_read` by sample id (no name lookup).
    pub fn read_by_id(&mut self, rt: &Runtime, id: u32) -> Result<Vec<u8>, DlfsError> {
        self.read_by_id_opt(rt, id, None)
    }

    /// [`DlfsIo::read_by_id`] with a deadline: cache-pressure backoff
    /// never waits past it (the read surfaces
    /// [`DlfsError::CacheExhausted`] instead).
    pub fn read_by_id_before(
        &mut self,
        rt: &Runtime,
        id: u32,
        deadline: Time,
    ) -> Result<Vec<u8>, DlfsError> {
        self.read_by_id_opt(rt, id, Some(deadline))
    }

    fn read_by_id_opt(
        &mut self,
        rt: &Runtime,
        id: u32,
        deadline: Option<Time>,
    ) -> Result<Vec<u8>, DlfsError> {
        if id as usize >= self.shared.dir.len() {
            return Err(DlfsError::BadSampleId(id));
        }
        let entry = self.shared.dir.entry(id);
        self.read_entry(rt, entry, deadline)
    }

    /// `dlfs_read` by sample id, zero-copy: the returned sample references
    /// pinned sample-cache chunks directly. On a warm cache this path does
    /// no memcpy and no heap allocation — the segment list stays inline
    /// and the pin is embedded in the sample. The chunks return to the
    /// pool (or the cross-epoch LRU tail) when the sample drops.
    pub fn read_zero_copy(&mut self, rt: &Runtime, id: u32) -> Result<ZeroCopySample, DlfsError> {
        if id as usize >= self.shared.dir.len() {
            return Err(DlfsError::BadSampleId(id));
        }
        let entry = self.shared.dir.entry(id);
        self.read_entry_zero_copy(rt, id, entry)
    }

    /// Submit every due (re)submission of the synchronous read path, lowest
    /// part first, stopping at qpair backpressure (QueueFull). Each entry
    /// is routed through the replica map (health-aware) when the instance
    /// is redundant.
    #[allow(clippy::too_many_arguments)]
    fn sync_submit_due(
        &mut self,
        rt: &Runtime,
        nid: usize,
        target_nid: u16,
        slba: u64,
        nblocks: u32,
        blocks_per_chunk: u32,
        bufs: &[DmaBuf],
        waiting: &mut Vec<(u32, u32, Time, u32)>,
        part_of: &mut HashMap<u64, (u32, u32, u32)>,
    ) {
        let costs = self.shared.cfg.costs.clone();
        loop {
            let now = rt.now();
            let Some(i) = waiting.iter().position(|&(_, _, nb, _)| nb <= now) else {
                break;
            };
            let (p, attempt, _, replica) = waiting[i];
            let start = p * blocks_per_chunk;
            let nb = (nblocks - start).min(blocks_per_chunk);
            let (r, dev, dev_slba) = match self.shared.redundancy.as_deref() {
                Some(red) if red.replicas > 1 => {
                    let r = red.pick_replica(target_nid, replica, rt.now());
                    let (d, s) = red.route(target_nid, r, slba + start as u64);
                    (r, d as usize, s)
                }
                _ => (0, nid, slba + start as u64),
            };
            let t0 = rt.now();
            rt.work(costs.prep_request);
            let t1 = rt.now();
            rt.work(costs.post_request);
            let cmd = self.next_cmd;
            match self.qpairs[dev].submit_read(rt, cmd, dev_slba, nb, bufs[p as usize].clone(), 0) {
                Ok(()) => {
                    self.next_cmd += 1;
                    self.tel.requests_posted.inc();
                    self.tel.prep_ns.record_dur(t1 - t0);
                    self.tel.post_ns.record_dur(rt.now() - t1);
                    part_of.insert(cmd, (p, attempt, r));
                    waiting.remove(i);
                }
                Err(_) => break, // queue full: poll completions, then retry
            }
        }
    }

    /// Serve `entry` out of a pinned resident range, if one covers it.
    /// `keys` pairs each candidate `RangeKey` with the byte base its
    /// buffers start at.
    fn read_pinned(
        &mut self,
        rt: &Runtime,
        entry: SampleEntry,
        keys: &[(RangeKey, u64)],
    ) -> Option<Vec<u8>> {
        let costs = self.shared.cfg.costs.clone();
        let (key, base, pinned) = keys.iter().find_map(|&(key, base)| {
            let p = self.shared.cache.pin(key)?;
            // The pinned range must actually cover the sample (an edge
            // sample's chunk-base key can name a different, shorter
            // range).
            if entry.offset() + entry.len() <= key.1 + p.len {
                Some((key, base, p))
            } else {
                let _ = self.shared.cache.unpin(key, p.gen);
                None
            }
        })?;
        self.tel.cache_hits.inc();
        self.tel.cache_pins.inc();
        if pinned.prefetched {
            self.tel.prefetch_hits.inc();
        }
        let chunk = self.shared.cfg.chunk_size as usize;
        let within = (entry.offset() - base) as usize;
        let segments = segments_at(&pinned.bufs, chunk, within, entry.len() as usize);
        let (done_tx, done_rx) = rt.channel::<CopyDone>(None);
        let t_copy = rt.now();
        rt.work(costs.copy_dispatch);
        self.shared.copy.submit(CopyJob {
            tag: 0,
            sample: 0,
            segments,
            done: done_tx,
        });
        let done = done_rx.recv().expect("copy pool alive");
        let _ = self.shared.cache.unpin(key, pinned.gen);
        self.tel.samples_delivered.inc();
        self.tel.bytes_delivered.add(done.data.len() as u64);
        self.tel.copy_ns.record_dur(rt.now() - t_copy);
        Some(done.data)
    }

    /// Synchronously fetch `nblocks` device blocks starting at `slba` from
    /// qpair `nid` into freshly allocated sample-cache chunks.
    ///
    /// Submits every part, then polls the qpair until they all drain —
    /// harvesting (and routing) any batched-engine or prefetcher strays
    /// that complete meanwhile — resubmitting failed commands under the
    /// shared retry policy. On retry exhaustion the buffers go back to the
    /// pool and the error names `target_nid`.
    fn fetch_range(
        &mut self,
        rt: &Runtime,
        nid: usize,
        target_nid: u16,
        slba: u64,
        nblocks: u32,
        deadline: Option<Time>,
    ) -> Result<Vec<DmaBuf>, DlfsError> {
        let costs = self.shared.cfg.costs.clone();
        // Under a codec `nblocks` is the encoded prefix of one stored
        // frame; the allocation must still cover the frame's raw extent so
        // the caller can decode it in place.
        let bytes = self
            .coded_geometry(target_nid, slba * BLOCK_SIZE)
            .map(|(_, _, alloc)| alloc)
            .unwrap_or(nblocks as u64 * BLOCK_SIZE);
        // Bugfix (satellite): a momentarily full pool used to surface
        // `CacheExhausted` immediately, while the batched path parks and
        // retries after releases. Wait under the shared retry policy —
        // bounded, deadline-clamped exponential backoff in virtual time —
        // before giving up.
        let retry = self.shared.cfg.retry;
        let mut alloc_failures = 0u32;
        let bufs = loop {
            if let Some(b) = self.shared.cache.alloc_for(bytes) {
                break b;
            }
            alloc_failures += 1;
            let Some(backoff) = retry.next_delay_before(alloc_failures, rt.now(), deadline) else {
                return Err(DlfsError::CacheExhausted);
            };
            // Busy-wait (virtual CPU time): another thread's release or a
            // dropped zero-copy sample may free chunks meanwhile.
            rt.work(backoff);
        };
        // prep + post each part; backpressure (a full qpair) and device
        // failures park the part in `waiting` for a later submission pass.
        let blocks_per_chunk = (self.shared.cfg.chunk_size / BLOCK_SIZE) as u32;
        let red = self.shared.redundancy.clone();
        // Devices that may serve this range (home + replicas): the poll
        // loop below must harvest all of them once reads fail over.
        let devs: Vec<usize> = match red.as_deref() {
            Some(r) if r.replicas > 1 => (0..r.replicas)
                .map(|i| r.route(target_nid, i, slba).0 as usize)
                .collect(),
            _ => vec![nid],
        };
        // Parts to (re)submit: (part, failed attempts so far, not before,
        // preferred replica).
        let mut waiting: Vec<(u32, u32, Time, u32)> = (0..bufs.len() as u32)
            .map(|p| (p, 0, Time::ZERO, 0))
            .collect();
        let mut part_of: HashMap<u64, (u32, u32, u32)> = HashMap::new();
        let mut mismatched_parts: HashSet<u32> = HashSet::new();
        let mut left = bufs.len();
        let mut fatal: Option<DlfsError> = None;
        self.sync_submit_due(
            rt,
            nid,
            target_nid,
            slba,
            nblocks,
            blocks_per_chunk,
            &bufs,
            &mut waiting,
            &mut part_of,
        );
        // Poll until all parts complete, resubmitting failed commands under
        // the retry policy. On exhaustion, keep polling until our in-flight
        // commands drain (SPDK cannot cancel a submitted command) before
        // surfacing the error. Empty polls advance straight to the next
        // known event (device completion or retry deadline) instead of
        // spinning toward it.
        let t_poll = rt.now();
        while (left > 0 && fatal.is_none()) || !part_of.is_empty() {
            if fatal.is_none() {
                self.sync_submit_due(
                    rt,
                    nid,
                    target_nid,
                    slba,
                    nblocks,
                    blocks_per_chunk,
                    &bufs,
                    &mut waiting,
                    &mut part_of,
                );
            }
            rt.work(costs.poll_iteration);
            self.tel.poll_spins.inc();
            let mut comps = Vec::new();
            for &d in &devs {
                comps.extend(self.qpairs[d].process_completions(rt, usize::MAX));
            }
            if comps.is_empty() {
                self.tel.scq_empty_polls.inc();
                let next_dev = devs
                    .iter()
                    .filter_map(|&d| self.qpairs[d].next_completion_at())
                    .min();
                let next_retry = waiting.iter().map(|&(_, _, nb, _)| nb).min();
                let next = match (next_dev, next_retry) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                };
                if let Some(t) = next {
                    self.advance_to(rt, t);
                }
            } else {
                self.tel.scq_drains.inc();
                self.tel.scq_drain_batch.record(comps.len() as u64);
                for c in &comps {
                    rt.work(costs.per_completion);
                    self.tel.completions.inc();
                    let Some((p, attempt, replica)) = part_of.remove(&c.id) else {
                        // Not ours: the batched engine (and its
                        // prefetcher) share these qpairs and their
                        // in-flight commands complete here too —
                        // including failed ones, which must be re-queued
                        // for retry, not merely routed.
                        match self.inflight.remove(&c.id) {
                            Some((idx, part, att, rep)) => {
                                self.engine_complete(rt, c.id, idx, part, att, rep, c.status);
                            }
                            None => self.prefetch_complete(rt, c.id, c.status),
                        }
                        continue;
                    };
                    let start = p * blocks_per_chunk;
                    let nb = (nblocks - start).min(blocks_per_chunk);
                    let serving = red
                        .as_deref()
                        .map(|r| r.route(target_nid, replica, slba + start as u64).0)
                        .unwrap_or(target_nid);
                    // Verify before the bytes can reach the caller (and,
                    // on the cross-epoch path, the sample cache).
                    let mut verify_failed = false;
                    if c.status.is_ok() {
                        if let Some(red) = red.as_deref().filter(|r| r.verify()) {
                            rt.work(costs.verify_block * nb as u64);
                            self.tel.iv_verified.add(nb as u64);
                            let span = nb as usize * BLOCK_SIZE as usize;
                            let home_slba = slba + start as u64;
                            let ok = bufs[p as usize]
                                .with(|d| red.verify_blocks(target_nid, home_slba, &d[..span]));
                            if ok {
                                if replica > 0 && mismatched_parts.remove(&p) {
                                    // Read-repair the home extent from this
                                    // verified replica copy.
                                    let home = self.shared.targets[target_nid as usize].clone();
                                    bufs[p as usize]
                                        .with(|d| home.dma_write(home_slba, &d[..span]));
                                    self.tel.iv_repairs.inc();
                                }
                            } else {
                                self.tel.iv_mismatches.inc();
                                mismatched_parts.insert(p);
                                verify_failed = true;
                            }
                        }
                    }
                    if c.status.is_ok() && !verify_failed {
                        if let Some(red) = red.as_deref().filter(|r| r.replicas > 1) {
                            red.record_ok(serving as usize);
                        }
                        left -= 1;
                        continue;
                    }
                    if c.status == CmdStatus::TransportError {
                        self.tel.timeouts.inc();
                    }
                    if let Some(red) = red.as_deref().filter(|r| r.replicas > 1) {
                        red.record_failure(serving as usize, rt.now());
                    }
                    let failed_attempts = attempt + 1;
                    match retry.next_delay(failed_attempts) {
                        Some(backoff) => {
                            self.tel.retries.inc();
                            if red.as_deref().is_some_and(|r| r.replicas > 1) {
                                // Immediate failover to the next replica.
                                self.tel.iv_failovers.inc();
                                waiting.push((p, failed_attempts, rt.now(), replica + 1));
                            } else {
                                waiting.push((p, failed_attempts, rt.now() + backoff, replica));
                            }
                        }
                        None => {
                            fatal.get_or_insert(if mismatched_parts.contains(&p) {
                                DlfsError::Corrupt {
                                    chunk: (slba + start as u64) * BLOCK_SIZE,
                                    tried: failed_attempts,
                                    cause: if c.status.is_ok() {
                                        CorruptCause::Checksum
                                    } else {
                                        CorruptCause::Io(match c.status {
                                            CmdStatus::TransportError => IoFailure::Timeout,
                                            _ => IoFailure::Media,
                                        })
                                    },
                                }
                            } else {
                                DlfsError::Io {
                                    target: target_nid.into(),
                                    attempts: failed_attempts,
                                    cause: match c.status {
                                        CmdStatus::TransportError => IoFailure::Timeout,
                                        _ => IoFailure::Media,
                                    },
                                }
                            });
                            waiting.clear();
                        }
                    }
                }
            }
        }
        self.tel.poll_ns.record_dur(rt.now() - t_poll);
        if let Some(e) = fatal {
            for b in bufs {
                self.shared.cache.free_raw(b);
            }
            return Err(e);
        }
        Ok(bufs)
    }

    fn read_entry(
        &mut self,
        rt: &Runtime,
        entry: SampleEntry,
        deadline: Option<Time>,
    ) -> Result<Vec<u8>, DlfsError> {
        let costs = self.shared.cfg.costs.clone();
        // No batch deadline applies to engine retries harvested while this
        // synchronous read drains the shared qpairs.
        self.current_deadline = None;
        let cross = self.shared.cfg.cache_mode == CacheMode::CrossEpoch;
        let chunk_base = entry.offset() / self.shared.cfg.chunk_size * self.shared.cfg.chunk_size;
        // Fast path (paper §III-C1): "we first check the sample entry and
        // return the data if the V field is on."
        if entry.valid() {
            if let Some(data) = self.read_pinned(
                rt,
                entry,
                &[(self.shared.rkey(entry.nid(), chunk_base), chunk_base)],
            ) {
                if cross {
                    self.tel.ce_hits.inc();
                }
                return Ok(data);
            }
        } else if cross {
            // Cross-epoch probe: release clears the V field, but the data
            // may still sit on the cache's LRU tail — under its chunk's
            // key, or (edge/sample-level items) under its own offset.
            let (_, _, head) = covering_blocks(entry.offset(), entry.len());
            let mut keys = vec![(self.shared.rkey(entry.nid(), chunk_base), chunk_base)];
            if entry.offset() != chunk_base {
                keys.push((
                    self.shared.rkey(entry.nid(), entry.offset()),
                    entry.offset() - head as u64,
                ));
            }
            if let Some(data) = self.read_pinned(rt, entry, &keys) {
                self.tel.ce_hits.inc();
                return Ok(data);
            }
        }
        self.tel.cache_misses.inc();
        if cross {
            self.tel.ce_misses.inc();
        }
        let nid = entry.nid() as usize;
        // Epoch-scoped mode fetches exactly the sample's covering blocks
        // and frees them after the copy. Cross-epoch mode fetches the whole
        // covering chunk instead and parks it on the cache's LRU tail, so
        // later reads of this sample — or its chunk neighbors — skip the
        // device entirely.
        let (slba, nblocks, head) = if let Some((fslba, enc_blocks, _)) =
            self.coded_geometry(entry.nid(), entry.offset())
        {
            // Codec datasets always fetch the sample's whole stored frame
            // (its encoded prefix), decoded in place below; the sample is
            // then sliced out of the raw frame.
            let head = (entry.offset() - fslba * BLOCK_SIZE) as usize;
            (fslba, enc_blocks, head)
        } else if cross {
            let sample_end = entry.offset() + entry.len();
            let dev_end = self.shared.targets[nid].blocks() * BLOCK_SIZE;
            let end = (chunk_base + self.shared.cfg.chunk_size)
                .min(dev_end)
                .max(sample_end);
            let nblocks = (end - chunk_base).div_ceil(BLOCK_SIZE) as u32;
            let head = (entry.offset() - chunk_base) as usize;
            (chunk_base / BLOCK_SIZE, nblocks, head)
        } else {
            covering_blocks(entry.offset(), entry.len())
        };
        let bufs = self.fetch_range(rt, nid, entry.nid(), slba, nblocks, deadline)?;
        self.decode_frame(rt, entry.nid(), entry.offset(), &bufs);
        let chunk = self.shared.cfg.chunk_size as usize;
        // copy stage through the pool.
        let (done_tx, done_rx) = rt.channel::<CopyDone>(None);
        let segments = segments_at(&bufs, chunk, head, entry.len() as usize);
        let t_copy = rt.now();
        rt.work(costs.copy_dispatch);
        self.shared.copy.submit(CopyJob {
            tag: 0,
            sample: 0,
            segments,
            done: done_tx,
        });
        let done = done_rx.recv().expect("copy pool alive");
        self.tel.samples_delivered.inc();
        self.tel.bytes_delivered.add(done.data.len() as u64);
        self.tel.copy_ns.record_dur(rt.now() - t_copy);
        if cross {
            // Park the fetched chunk on the evictable LRU tail (unless the
            // batched engine published the same key while we polled).
            let key = self.shared.rkey(entry.nid(), chunk_base);
            if self.shared.cache.contains(key) {
                for b in bufs {
                    self.shared.cache.free_raw(b);
                }
            } else {
                // Under a codec the buffers now hold the decoded raw
                // frame, which is longer than the encoded blocks fetched.
                let len = self
                    .coded_geometry(entry.nid(), entry.offset())
                    .map(|(_, _, alloc)| alloc)
                    .unwrap_or(nblocks as u64 * BLOCK_SIZE);
                self.shared.cache.publish(key, bufs, len);
                self.shared.cache.release(key)?;
            }
        } else {
            for b in bufs {
                self.shared.cache.free_raw(b);
            }
        }
        Ok(done.data)
    }

    /// Synchronous zero-copy read of one directory entry.
    ///
    /// Warm path: pin a resident range covering the sample and hand out
    /// chunk-backed segments — no memcpy, no allocation. Miss path: fetch
    /// through [`DlfsIo::fetch_range`], publish the range into the cache,
    /// pin it, and release it so the pool reclaims it after the sample
    /// drops (cross-epoch mode parks it on the LRU tail instead).
    fn read_entry_zero_copy(
        &mut self,
        rt: &Runtime,
        id: u32,
        entry: SampleEntry,
    ) -> Result<ZeroCopySample, DlfsError> {
        // No batch deadline applies to engine retries harvested while this
        // synchronous read drains the shared qpairs.
        self.current_deadline = None;
        let cross = self.shared.cfg.cache_mode == CacheMode::CrossEpoch;
        let chunk_base = entry.offset() / self.shared.cfg.chunk_size * self.shared.cfg.chunk_size;
        let (_, _, head) = covering_blocks(entry.offset(), entry.len());
        loop {
            // Warm path: candidate keys in a fixed array (no allocation) —
            // the covering chunk's key, plus (edge/sample-level items) the
            // sample's own offset.
            let mut keys: [Option<(RangeKey, u64)>; 2] = [
                Some((self.shared.rkey(entry.nid(), chunk_base), chunk_base)),
                None,
            ];
            if entry.offset() != chunk_base {
                keys[1] = Some((
                    self.shared.rkey(entry.nid(), entry.offset()),
                    entry.offset() - head as u64,
                ));
            }
            if let Some(s) = self.pin_zero_copy(rt, id, entry, keys) {
                if cross {
                    self.tel.ce_hits.inc();
                }
                return Ok(s);
            }
            self.tel.cache_misses.inc();
            if cross {
                self.tel.ce_misses.inc();
            }
            let nid = entry.nid() as usize;
            // Same fetch geometry as the copied path: the whole covering
            // chunk in cross-epoch mode (parked on the LRU tail after the
            // sample drops), exactly the covering blocks otherwise.
            let (slba, nblocks, base, key) = if let Some((fslba, enc_blocks, _)) =
                self.coded_geometry(entry.nid(), entry.offset())
            {
                // Codec datasets fetch the sample's whole stored frame
                // (its encoded prefix) and decode in place before the
                // publish, so the pinned segments reference raw bytes.
                let fbase = fslba * BLOCK_SIZE;
                (
                    fslba,
                    enc_blocks,
                    fbase,
                    self.shared.rkey(entry.nid(), fbase),
                )
            } else if cross {
                let sample_end = entry.offset() + entry.len();
                let dev_end = self.shared.targets[nid].blocks() * BLOCK_SIZE;
                let end = (chunk_base + self.shared.cfg.chunk_size)
                    .min(dev_end)
                    .max(sample_end);
                let nblocks = (end - chunk_base).div_ceil(BLOCK_SIZE) as u32;
                (
                    chunk_base / BLOCK_SIZE,
                    nblocks,
                    chunk_base,
                    self.shared.rkey(entry.nid(), chunk_base),
                )
            } else {
                let (slba, nblocks, _) = covering_blocks(entry.offset(), entry.len());
                (
                    slba,
                    nblocks,
                    entry.offset() - head as u64,
                    self.shared.rkey(entry.nid(), entry.offset()),
                )
            };
            let bufs = self.fetch_range(rt, nid, entry.nid(), slba, nblocks, None)?;
            if self.shared.cache.contains(key) {
                // Published concurrently (batched engine or another
                // reader) while we polled: drop our fetch and pin the
                // resident copy on the next pass.
                for b in bufs {
                    self.shared.cache.free_raw(b);
                }
                continue;
            }
            self.decode_frame(rt, entry.nid(), entry.offset(), &bufs);
            // publish + pin + release run back to back with no virtual-time
            // advance between them, so no other participant can interleave:
            // the live-double-publish panic in `publish` cannot fire, and
            // the range cannot be evicted before we hold the pin.
            let len = self
                .coded_geometry(entry.nid(), entry.offset())
                .map(|(_, _, alloc)| alloc)
                .unwrap_or(nblocks as u64 * BLOCK_SIZE);
            self.shared.cache.publish(key, bufs, len);
            let (gen, _, _) = self.shared.cache.pin_key(key).expect("just published");
            self.shared.cache.release(key)?;
            return Ok(self.finish_zero_copy(rt, id, entry, key, base, gen));
        }
    }

    /// Warm zero-copy pin: try each candidate `(key, buffer byte base)`;
    /// on a resident range covering the sample, take a pin and build the
    /// sample in place.
    fn pin_zero_copy(
        &mut self,
        rt: &Runtime,
        id: u32,
        entry: SampleEntry,
        keys: [Option<(RangeKey, u64)>; 2],
    ) -> Option<ZeroCopySample> {
        for (key, base) in keys.into_iter().flatten() {
            let Some((gen, len, prefetched)) = self.shared.cache.pin_key(key) else {
                continue;
            };
            // The pinned range must actually cover the sample (an edge
            // sample's chunk-base key can name a different, shorter
            // range).
            if entry.offset() + entry.len() > key.1 + len {
                let _ = self.shared.cache.unpin(key, gen);
                continue;
            }
            self.tel.cache_hits.inc();
            if prefetched {
                self.tel.prefetch_hits.inc();
            }
            return Some(self.finish_zero_copy(rt, id, entry, key, base, gen));
        }
        None
    }

    /// Build the delivered sample from a pin already taken on `key` whose
    /// buffers start at byte `base`. Allocation-free: the segment list
    /// stays inline and the pin is embedded in the sample.
    fn finish_zero_copy(
        &mut self,
        rt: &Runtime,
        id: u32,
        entry: SampleEntry,
        key: RangeKey,
        base: u64,
        gen: u64,
    ) -> ZeroCopySample {
        let chunk = self.shared.cfg.chunk_size as usize;
        let within = (entry.offset() - base) as usize;
        let segments = self
            .shared
            .cache
            .with_resident(key, |bufs, _| {
                segments_at(bufs, chunk, within, entry.len() as usize)
            })
            .expect("pinned range is resident");
        rt.work(self.shared.cfg.costs.frontend_per_sample);
        self.tel.cache_pins.inc();
        self.tel.samples_delivered.inc();
        self.tel.bytes_delivered.add(entry.len());
        ZeroCopySample::new(
            id,
            segments,
            Pin::Own {
                cache: self.shared.cache.clone(),
                key,
                gen,
            },
        )
    }

    /// `dlfs_open`: name lookup through the sample directory (returns the
    /// sample id as the handle — DLFS handles are directory references).
    pub fn open(&mut self, rt: &Runtime, name: &str) -> Result<u32, DlfsError> {
        let costs = self.shared.cfg.costs.clone();
        self.shared
            .dir
            .lookup(rt, &costs, name)
            .map(|(id, _)| id)
            .ok_or_else(|| DlfsError::NotFound(name.to_string()))
    }

    /// `dlfs_close`: drop the handle (directory entries are immutable, so
    /// this is bookkeeping only).
    pub fn close(&mut self, _rt: &Runtime, _handle: u32) {}
}

/// Compute the copy segments of `entry` within an item's fetched buffers.
/// Nearly always one segment (two when the sample straddles a chunk
/// boundary), so the returned [`SegList`] stays inline and allocation-free.
fn segments_for(
    item: &FetchItem,
    base: u64,
    bufs: &[DmaBuf],
    chunk: usize,
    entry: SampleEntry,
) -> SegList {
    debug_assert_eq!(entry.nid(), item.nid);
    let within = (entry.offset() - base) as usize;
    segments_at(bufs, chunk, within, entry.len() as usize)
}

/// Slice `len` payload bytes starting at `pos` (relative to the buffers'
/// base) into chunk-bounded segments.
fn segments_at(bufs: &[DmaBuf], chunk: usize, mut pos: usize, mut remaining: usize) -> SegList {
    let mut segs = SegList::new();
    while remaining > 0 {
        let b = pos / chunk;
        let off = pos % chunk;
        let take = (chunk - off).min(remaining);
        segs.push(Segment {
            buf: bufs[b].clone(),
            offset: off,
            len: take,
        });
        pos += take;
        remaining -= take;
    }
    segs
}
