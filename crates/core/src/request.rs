//! The batched read-request API: a builder describing *what* to deliver
//! (`ReadRequest`) and a typed completion iterator carrying *how* it was
//! delivered (`Completions`), executed by
//! [`DlfsIo::submit`](crate::DlfsIo::submit).
//!
//! This replaces the older positional `bread(rt, n, inject)` /
//! `bread_zero_copy(rt, n)` pair: one entry point, with the delivery mode,
//! the injected-compute hook (Fig. 7b) and an optional virtual-time
//! deadline expressed as explicit request fields.

use simkit::time::{Dur, Time};

use crate::zerocopy::ZeroCopySample;

/// How sample payloads reach the application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Delivery {
    /// Copy-thread pool moves bytes into application buffers (the paper's
    /// normal `dlfs_bread` path).
    #[default]
    Copied,
    /// Samples reference pinned sample-cache chunks; no memcpy, and the
    /// chunks return to the pool when the application drops them.
    ZeroCopy,
}

/// A batched read of the current epoch plan.
///
/// ```
/// use dlfs::{Delivery, ReadRequest};
/// use simkit::time::Dur;
///
/// let req = ReadRequest::batch(32)
///     .delivery(Delivery::ZeroCopy)
///     .inject_compute(Dur::micros(5));
/// assert_eq!(req.n, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRequest {
    /// Number of samples requested. The engine delivers
    /// `min(n, remaining)` and errors with `EpochExhausted` at zero.
    pub n: usize,
    /// Payload delivery mode.
    pub delivery: Delivery,
    /// Virtual-time instant after which no *further* samples are started.
    /// Samples already handed to the copy threads still drain, so the batch
    /// returns possibly short but never torn. `None` means run to `n`.
    pub deadline: Option<Time>,
    /// Application computation executed inside the busy-poll loop while
    /// device commands are in flight (the Fig. 7b experiment). Normally
    /// zero.
    pub inject_compute: Dur,
    /// Storage-side offload: each storage node reads, verifies and
    /// decodes the batch's stored frames *locally* and ships ONE dense
    /// response carrying exactly the requested sample bytes — fewer,
    /// denser fabric transfers, with decode charged to the target's
    /// compute pool instead of the trainer. Requires
    /// [`DlfsConfig::offload`](crate::DlfsConfig::offload) and copied
    /// delivery (an offloaded batch is assembled remotely, so there is
    /// nothing to zero-copy from the local sample cache).
    pub offload: bool,
    /// Tenant this batch is accounted to at the QoS admission gate
    /// (token bucket + WFQ slot). `None` charges the issuing handle's
    /// tenant — the instance default (0) unless the handle came from
    /// [`DlfsInstance::io_tenant`](crate::DlfsInstance::io_tenant). The
    /// cache namespace always follows the *handle's* tenant: residency
    /// is per-epoch state owned by the handle.
    pub tenant: Option<crate::tenant::TenantId>,
}

impl ReadRequest {
    /// A copied-delivery request for `n` samples with no deadline.
    pub fn batch(n: usize) -> ReadRequest {
        ReadRequest {
            n,
            delivery: Delivery::default(),
            deadline: None,
            inject_compute: Dur::ZERO,
            offload: false,
            tenant: None,
        }
    }

    /// Set the delivery mode.
    pub fn delivery(mut self, delivery: Delivery) -> ReadRequest {
        self.delivery = delivery;
        self
    }

    /// Shorthand for `delivery(Delivery::ZeroCopy)`.
    pub fn zero_copy(self) -> ReadRequest {
        self.delivery(Delivery::ZeroCopy)
    }

    /// Stop starting new samples once the virtual clock reaches `at`.
    pub fn deadline(mut self, at: Time) -> ReadRequest {
        self.deadline = Some(at);
        self
    }

    /// Inject application compute into the polling loop.
    pub fn inject_compute(mut self, work: Dur) -> ReadRequest {
        self.inject_compute = work;
        self
    }

    /// Account this batch to `tenant` (see [`ReadRequest::tenant`]).
    pub fn tenant(mut self, tenant: crate::tenant::TenantId) -> ReadRequest {
        self.tenant = Some(tenant);
        self
    }

    /// Assemble this batch storage-side (see [`ReadRequest::offload`]).
    pub fn offload(mut self) -> ReadRequest {
        self.offload = true;
        self
    }
}

/// One delivered sample, tagged by how its payload reached the
/// application.
#[derive(Debug)]
pub enum Completion {
    /// Sample id plus a private payload copy from the copy pool.
    Copied { id: u32, data: Vec<u8> },
    /// A zero-copy sample referencing pinned sample-cache chunks.
    ZeroCopy(ZeroCopySample),
}

impl Completion {
    /// The delivered sample id.
    pub fn id(&self) -> u32 {
        match self {
            Completion::Copied { id, .. } => *id,
            Completion::ZeroCopy(s) => s.id,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Completion::Copied { data, .. } => data.len(),
            Completion::ZeroCopy(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result of one [`ReadRequest`]: a typed iterator of
/// [`Completion`]s in delivery order.
///
/// All samples of a batch share one delivery mode, so the whole-batch
/// unwrappers [`Completions::into_copied`] / [`Completions::into_zero_copy`]
/// stay available; iterate for mode-agnostic consumption.
#[derive(Debug)]
pub struct Completions {
    inner: CompletionsInner,
}

#[derive(Debug)]
enum CompletionsInner {
    Copied(std::vec::IntoIter<(u32, Vec<u8>)>),
    ZeroCopy(std::vec::IntoIter<ZeroCopySample>),
}

impl Completions {
    pub(crate) fn copied(v: Vec<(u32, Vec<u8>)>) -> Completions {
        Completions {
            inner: CompletionsInner::Copied(v.into_iter()),
        }
    }

    pub(crate) fn zero_copy(v: Vec<ZeroCopySample>) -> Completions {
        Completions {
            inner: CompletionsInner::ZeroCopy(v.into_iter()),
        }
    }

    /// Samples remaining (all of them, before any `next()` call).
    pub fn len(&self) -> usize {
        match &self.inner {
            CompletionsInner::Copied(it) => it.len(),
            CompletionsInner::ZeroCopy(it) => it.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining sample ids, in delivery order (does not consume).
    pub fn sample_ids(&self) -> Vec<u32> {
        match &self.inner {
            CompletionsInner::Copied(it) => it.as_slice().iter().map(|(id, _)| *id).collect(),
            CompletionsInner::ZeroCopy(it) => it.as_slice().iter().map(|s| s.id).collect(),
        }
    }

    /// Unwrap a copied-delivery batch.
    ///
    /// # Panics
    /// If the batch was delivered zero-copy.
    pub fn into_copied(self) -> Vec<(u32, Vec<u8>)> {
        match self.inner {
            CompletionsInner::Copied(it) => it.collect(),
            CompletionsInner::ZeroCopy(_) => panic!("batch was delivered zero-copy"),
        }
    }

    /// Unwrap a zero-copy batch.
    ///
    /// # Panics
    /// If the batch was delivered through the copy pool.
    pub fn into_zero_copy(self) -> Vec<ZeroCopySample> {
        match self.inner {
            CompletionsInner::ZeroCopy(it) => it.collect(),
            CompletionsInner::Copied(_) => panic!("batch was delivered through the copy pool"),
        }
    }
}

impl Iterator for Completions {
    type Item = Completion;

    fn next(&mut self) -> Option<Completion> {
        match &mut self.inner {
            CompletionsInner::Copied(it) => {
                it.next().map(|(id, data)| Completion::Copied { id, data })
            }
            CompletionsInner::ZeroCopy(it) => it.next().map(Completion::ZeroCopy),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Completions {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let req = ReadRequest::batch(16);
        assert_eq!(req.n, 16);
        assert_eq!(req.delivery, Delivery::Copied);
        assert_eq!(req.deadline, None);
        assert!(req.inject_compute.is_zero());
        assert!(!req.offload);
        assert!(ReadRequest::batch(16).offload().offload);

        let at = Time::ZERO + Dur::nanos(500);
        let req = ReadRequest::batch(8)
            .zero_copy()
            .deadline(at)
            .inject_compute(Dur::micros(2));
        assert_eq!(req.delivery, Delivery::ZeroCopy);
        assert_eq!(req.deadline, Some(at));
        assert_eq!(req.inject_compute, Dur::micros(2));
    }

    #[test]
    fn completions_accessors() {
        let b = Completions::copied(vec![(3, vec![1, 2]), (5, vec![4])]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.sample_ids(), vec![3, 5]);
        assert_eq!(b.into_copied().len(), 2);
    }

    #[test]
    fn completions_iterate_in_delivery_order() {
        let mut b = Completions::copied(vec![(3, vec![1, 2]), (5, vec![4])]);
        assert_eq!(b.size_hint(), (2, Some(2)));
        let first = b.next().unwrap();
        assert_eq!(first.id(), 3);
        assert_eq!(first.len(), 2);
        assert_eq!(b.len(), 1, "len tracks the un-consumed remainder");
        match b.next().unwrap() {
            Completion::Copied { id, data } => {
                assert_eq!(id, 5);
                assert_eq!(data, vec![4]);
            }
            Completion::ZeroCopy(_) => panic!("copied batch"),
        }
        assert!(b.next().is_none());
    }

    #[test]
    #[should_panic(expected = "zero-copy")]
    fn wrong_variant_panics() {
        Completions::zero_copy(Vec::new()).into_copied();
    }
}
