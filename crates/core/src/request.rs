//! The batched read-request API: a builder describing *what* to deliver
//! (`ReadRequest`) and a tagged result carrying *how* it was delivered
//! (`Batch`), executed by [`DlfsIo::submit`](crate::DlfsIo::submit).
//!
//! This replaces the older positional `bread(rt, n, inject)` /
//! `bread_zero_copy(rt, n)` pair: one entry point, with the delivery mode,
//! the injected-compute hook (Fig. 7b) and an optional virtual-time
//! deadline expressed as explicit request fields.

use simkit::time::{Dur, Time};

use crate::zerocopy::ZeroCopySample;

/// How sample payloads reach the application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Delivery {
    /// Copy-thread pool moves bytes into application buffers (the paper's
    /// normal `dlfs_bread` path).
    #[default]
    Copied,
    /// Samples reference pinned sample-cache chunks; no memcpy, and the
    /// chunks return to the pool when the application drops them.
    ZeroCopy,
}

/// A batched read of the current epoch plan.
///
/// ```
/// use dlfs::{Delivery, ReadRequest};
/// use simkit::time::Dur;
///
/// let req = ReadRequest::batch(32)
///     .delivery(Delivery::ZeroCopy)
///     .inject_compute(Dur::micros(5));
/// assert_eq!(req.n, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRequest {
    /// Number of samples requested. The engine delivers
    /// `min(n, remaining)` and errors with `EpochExhausted` at zero.
    pub n: usize,
    /// Payload delivery mode.
    pub delivery: Delivery,
    /// Virtual-time instant after which no *further* samples are started.
    /// Samples already handed to the copy threads still drain, so the batch
    /// returns possibly short but never torn. `None` means run to `n`.
    pub deadline: Option<Time>,
    /// Application computation executed inside the busy-poll loop while
    /// device commands are in flight (the Fig. 7b experiment). Normally
    /// zero.
    pub inject_compute: Dur,
}

impl ReadRequest {
    /// A copied-delivery request for `n` samples with no deadline.
    pub fn batch(n: usize) -> ReadRequest {
        ReadRequest {
            n,
            delivery: Delivery::default(),
            deadline: None,
            inject_compute: Dur::ZERO,
        }
    }

    /// Set the delivery mode.
    pub fn delivery(mut self, delivery: Delivery) -> ReadRequest {
        self.delivery = delivery;
        self
    }

    /// Shorthand for `delivery(Delivery::ZeroCopy)`.
    pub fn zero_copy(self) -> ReadRequest {
        self.delivery(Delivery::ZeroCopy)
    }

    /// Stop starting new samples once the virtual clock reaches `at`.
    pub fn deadline(mut self, at: Time) -> ReadRequest {
        self.deadline = Some(at);
        self
    }

    /// Inject application compute into the polling loop.
    pub fn inject_compute(mut self, work: Dur) -> ReadRequest {
        self.inject_compute = work;
        self
    }
}

/// The result of one [`ReadRequest`], tagged by delivery mode.
#[derive(Debug)]
pub enum Batch {
    /// `(sample id, payload)` pairs from the copy pool.
    Copied(Vec<(u32, Vec<u8>)>),
    /// Zero-copy samples referencing pinned sample-cache chunks.
    ZeroCopy(Vec<ZeroCopySample>),
}

impl Batch {
    /// Samples delivered.
    pub fn len(&self) -> usize {
        match self {
            Batch::Copied(v) => v.len(),
            Batch::ZeroCopy(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delivered sample ids, in delivery order.
    pub fn sample_ids(&self) -> Vec<u32> {
        match self {
            Batch::Copied(v) => v.iter().map(|(id, _)| *id).collect(),
            Batch::ZeroCopy(v) => v.iter().map(|s| s.id).collect(),
        }
    }

    /// Unwrap a copied-delivery batch.
    ///
    /// # Panics
    /// If the batch was delivered zero-copy.
    pub fn into_copied(self) -> Vec<(u32, Vec<u8>)> {
        match self {
            Batch::Copied(v) => v,
            Batch::ZeroCopy(_) => panic!("batch was delivered zero-copy"),
        }
    }

    /// Unwrap a zero-copy batch.
    ///
    /// # Panics
    /// If the batch was delivered through the copy pool.
    pub fn into_zero_copy(self) -> Vec<ZeroCopySample> {
        match self {
            Batch::ZeroCopy(v) => v,
            Batch::Copied(_) => panic!("batch was delivered through the copy pool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let req = ReadRequest::batch(16);
        assert_eq!(req.n, 16);
        assert_eq!(req.delivery, Delivery::Copied);
        assert_eq!(req.deadline, None);
        assert!(req.inject_compute.is_zero());

        let at = Time::ZERO + Dur::nanos(500);
        let req = ReadRequest::batch(8)
            .zero_copy()
            .deadline(at)
            .inject_compute(Dur::micros(2));
        assert_eq!(req.delivery, Delivery::ZeroCopy);
        assert_eq!(req.deadline, Some(at));
        assert_eq!(req.inject_compute, Dur::micros(2));
    }

    #[test]
    fn batch_accessors() {
        let b = Batch::Copied(vec![(3, vec![1, 2]), (5, vec![4])]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.sample_ids(), vec![3, 5]);
        assert_eq!(b.into_copied().len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-copy")]
    fn wrong_variant_panics() {
        Batch::ZeroCopy(Vec::new()).into_copied();
    }
}
