//! Randomized property tests for the fabric: transfer-time sanity, RDMA
//! roundtrips under arbitrary offsets/lengths, and incast determinism.
//! Cases come from seeded [`SplitMix64`] streams so failures replay exactly.

use std::sync::Arc;

use fabric::{Cluster, FabricConfig, MemoryRegion, RdmaQp};
use simkit::prelude::*;
use simkit::time::Time;

const CASES: u64 = 48;

#[test]
fn transfer_time_is_monotone_in_bytes() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x7A4F, case);
        let a = g.range(1, 10_000_000);
        let b = g.range(1, 10_000_000);
        let from = g.below(4) as usize;
        let to = g.below(4) as usize;
        // On an idle fabric, moving more bytes never arrives earlier.
        let (small, large) = (a.min(b), a.max(b));
        Runtime::simulate(0, |rt| {
            let c1 = Cluster::new(4, FabricConfig::default());
            let t_small = c1.reserve_transfer(rt.now(), from, to, small);
            let c2 = Cluster::new(4, FabricConfig::default());
            let t_large = c2.reserve_transfer(rt.now(), from, to, large);
            assert!(
                t_small <= t_large,
                "{small}B at {t_small:?} vs {large}B at {t_large:?}"
            );
        });
    }
}

#[test]
fn rdma_roundtrip_arbitrary_ranges() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x4D4A, case);
        let len = g.range(1, 8192) as usize;
        let offset = g.below(1024) as usize;
        let remote = g.below(2) == 1;
        let seed = g.below(1000);
        Runtime::simulate(seed, |rt| {
            let c = Arc::new(Cluster::new(2, FabricConfig::default()));
            let mr = MemoryRegion::register(if remote { 1 } else { 0 }, offset + len);
            let qp = RdmaQp::new(c, 0);
            let payload: Vec<u8> = (0..len)
                .map(|i| ((i * 31 + seed as usize) % 251) as u8)
                .collect();
            qp.write(rt, &mr, offset, &payload);
            let mut out = vec![0u8; len];
            qp.read(rt, &mr, offset, &mut out);
            assert_eq!(out, payload);
        });
    }
}

#[test]
fn incast_is_deterministic_and_nic_bounded() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x14CA, case);
        let senders = g.range(2, 6) as usize;
        let kb = g.range(16, 512);
        let run = || {
            Runtime::simulate(7, |rt| {
                let c = Cluster::new(senders + 1, FabricConfig::default());
                let mut last = Time::ZERO;
                for s in 1..=senders {
                    last = last.max(c.reserve_transfer(rt.now(), s, 0, kb << 10));
                }
                last.nanos()
            })
            .0
        };
        let t1 = run();
        let t2 = run();
        assert_eq!(t1, t2, "incast must replay identically");
        // The receiver NIC is the floor: total bytes / nic bandwidth.
        let total = (senders as u64) * (kb << 10);
        let floor_ns = (total as f64 / FabricConfig::default().nic_bytes_per_sec * 1e9) as u64;
        assert!(t1 >= floor_ns, "{t1} < NIC floor {floor_ns}");
    }
}

#[test]
fn fetch_add_totals_match() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xFE7C, case);
        let clients = g.range(1, 4) as usize;
        let per_client = g.range(1, 20);
        let (total, _) = Runtime::simulate(3, |rt| {
            let c = Arc::new(Cluster::new(clients + 1, FabricConfig::default()));
            let mr = MemoryRegion::register(clients, 8);
            let handles: Vec<_> = (0..clients)
                .map(|n| {
                    let qp = RdmaQp::new(c.clone(), n);
                    let mr = mr.clone();
                    rt.spawn_with(&format!("c{n}"), move |rt| {
                        for _ in 0..per_client {
                            qp.fetch_add_u64(rt, &mr, 0, 2);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let mut out = [0u8; 8];
            mr.local_read(0, &mut out);
            u64::from_le_bytes(out)
        });
        assert_eq!(total, clients as u64 * per_client * 2);
    }
}
