//! Fabric fault-injection coverage: dropped remote NVMe commands surface
//! as transport errors after the I/O timeout, RPC calls retry and fail
//! over deterministic schedules, and the seeded fault stream replays.

use std::sync::Arc;

use blocksim::{CmdStatus, DeviceConfig, DmaBuf, FaultInjector, IoQPair, NvmeDevice};
use fabric::{
    connect, serve, Cluster, FabricConfig, FabricFault, FabricFaultInjector, NvmeOfTarget,
    RpcError, TargetConfig,
};
use simkit::prelude::*;

fn two_node_remote(cluster: &Arc<Cluster>) -> (Arc<NvmeDevice>, Arc<fabric::RemoteTarget>) {
    let dev = NvmeDevice::new(DeviceConfig::emulated_ramdisk(16 << 20, Dur::micros(10)));
    let target = NvmeOfTarget::new(1, dev.clone(), TargetConfig::default());
    let remote = connect(cluster.clone(), 0, target);
    (dev, remote)
}

#[test]
fn dropped_remote_command_times_out_with_transport_error() {
    Runtime::simulate(0, |rt| {
        let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
        let (dev, remote) = two_node_remote(&cluster);
        dev.storage().write_at(0, &[0x5A; 512]);
        cluster.set_faults(
            FabricFaultInjector::new(3)
                .with_drops(1_000_000)
                .with_io_timeout(Dur::micros(50)),
        );
        let mut qp = IoQPair::new(remote, 8);
        let buf = DmaBuf::standalone(512);
        let t0 = rt.now();
        qp.submit_read(rt, 1, 0, 1, buf.clone(), 0).unwrap();
        let comps = qp.drain(rt, Dur::micros(5));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].status, CmdStatus::TransportError);
        // The loss is only observed after the configured I/O timeout.
        assert!(rt.now() - t0 >= Dur::micros(50));
        // No DMA happened: the command never reached the device.
        buf.with(|d| assert!(d.iter().all(|&b| b == 0)));
        let m = cluster.metrics();
        assert_eq!(m.counter("fabric.faults.drops"), 1);
    });
}

#[test]
fn device_and_fabric_faults_compose_on_a_remote_target() {
    Runtime::simulate(1, |rt| {
        let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
        let (dev, remote) = two_node_remote(&cluster);
        dev.storage().write_at(0, &[0x33; 512]);
        // Fabric healthy, device media always fails: the remote initiator
        // sees the media error, not a transport error.
        dev.set_faults(FaultInjector::new(7).with_read_failures(1_000_000));
        let mut qp = IoQPair::new(remote, 8);
        let buf = DmaBuf::standalone(512);
        qp.submit_read(rt, 1, 0, 1, buf, 0).unwrap();
        let comps = qp.drain(rt, Dur::micros(5));
        assert_eq!(comps[0].status, CmdStatus::MediaError);
    });
}

#[test]
fn rpc_try_call_exhausts_attempts_and_reports() {
    Runtime::simulate(2, |rt| {
        let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
        cluster.set_faults(
            FabricFaultInjector::new(5)
                .with_drops(1_000_000)
                .with_io_timeout(Dur::micros(30)),
        );
        let client = serve::<u64, u64>(rt, cluster.clone(), 1, "echo", |rt, _from, x| {
            rt.work(Dur::micros(1));
            x + 1
        })
        .with_retry(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        let err = client.try_call(rt, 0, 41).unwrap_err();
        assert_eq!(
            err,
            RpcError::Timeout {
                server_node: 1,
                attempts: 3
            }
        );
        let m = cluster.metrics();
        assert_eq!(m.counter("fabric.rpc.echo.timeouts"), 3);
        assert_eq!(m.counter("fabric.rpc.echo.retries"), 2);
        assert_eq!(m.counter("fabric.rpc.echo.calls"), 0);
    });
}

#[test]
fn rpc_rides_out_a_crash_window() {
    Runtime::simulate(3, |rt| {
        let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
        let now = rt.now();
        let up_at = now + Dur::micros(200);
        let inj = cluster.set_faults(
            FabricFaultInjector::new(8)
                .with_io_timeout(Dur::micros(25))
                .with_crash(1, now, up_at),
        );
        assert!(!inj.node_up(1, now));
        let client = serve::<u64, u64>(rt, cluster.clone(), 1, "echo", |rt, _from, x| {
            rt.work(Dur::micros(1));
            x + 1
        });
        // The default retry budget (~10 ms of backoff) outlasts the 200 µs
        // outage: the call succeeds once the target restarts.
        let resp = client.try_call(rt, 0, 41).unwrap();
        assert_eq!(resp, 42);
        assert!(rt.now() >= up_at, "call cannot succeed before restart");
        let m = cluster.metrics();
        assert!(m.counter("fabric.rpc.echo.timeouts") > 0);
        assert!(m.counter("fabric.faults.outage_drops") > 0);
        assert_eq!(m.gauge("fabric.faults.node1.target_up"), 1);
    });
}

#[test]
fn link_flap_follows_its_schedule() {
    let inj = FabricFaultInjector::new(4).with_link_flap(
        0,
        Time::ZERO + Dur::micros(100),
        Dur::micros(20),
        Dur::micros(50),
        2,
    );
    let at = |us: u64| Time::ZERO + Dur::micros(us);
    assert!(inj.node_up(0, at(0)));
    assert!(!inj.node_up(0, at(100)));
    assert!(!inj.node_up(0, at(119)));
    assert!(inj.node_up(0, at(120)));
    assert!(!inj.node_up(0, at(150)));
    assert!(inj.node_up(0, at(170)));
    // Past the last cycle the link stays up.
    assert!(inj.node_up(0, at(200)));
    assert!(inj.node_up(0, at(250)));
}

#[test]
fn seeded_fault_stream_replays_bit_identically() {
    let fates = |seed: u64| {
        let inj = FabricFaultInjector::new(seed)
            .with_drops(100_000)
            .with_delays(200_000, Dur::micros(5));
        (0..256)
            .map(|i| inj.decide(Time::ZERO + Dur::nanos(i), 0, 1))
            .collect::<Vec<_>>()
    };
    let a = fates(11);
    assert_eq!(a, fates(11), "same seed must replay the same fates");
    assert_ne!(a, fates(12), "different seeds should diverge");
    assert!(a.iter().any(|f| f.is_dropped()));
    assert!(a.iter().any(|f| matches!(f, FabricFault::Delay(_))));
    assert!(a.iter().any(|f| matches!(f, FabricFault::Healthy)));
}

#[test]
fn zero_knob_injector_never_faults() {
    let inj = FabricFaultInjector::new(9);
    for i in 0..512u64 {
        let fate = inj.decide(
            Time::ZERO + Dur::nanos(i),
            (i % 3) as usize,
            ((i + 1) % 3) as usize,
        );
        assert_eq!(fate, FabricFault::Healthy);
    }
    assert_eq!(inj.decisions(), 512);
}
