//! Shard-map routing for a partitioned metadata service.
//!
//! A metadata namespace split into `S` shards is described by a
//! [`ShardMap`]: an epoch-stamped table assigning every shard a primary
//! owner node and a standby. Clients hold a [`ShardRouter`], which caches
//! the map, routes each shard to a healthy node through the shared
//! [`TargetHealth`] circuit breaker, and refreshes the cached map when a
//! server response proves it stale (epoch-stamped invalidation: the client
//! sends the epoch it routed with, the server piggybacks the current map
//! on the reply when the epochs disagree).
//!
//! The router is deliberately service-agnostic — it knows nodes, shards,
//! epochs and health, not what the shards contain. DLFS builds its sample
//! metadata service on top (`dlfs::metashard`), octofs-style hash tables
//! could equally well be routed through it.

use std::sync::Arc;

use simkit::plock::Mutex;
use simkit::retry::RetryPolicy;
use simkit::telemetry::{Counter, Registry};
use simkit::time::{Dur, Time};

use crate::health::TargetHealth;

/// Epoch-stamped assignment of metadata shards to serving nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotonic map version; any change to ownership bumps it.
    pub epoch: u64,
    /// Primary owner node per shard.
    pub owner: Vec<u16>,
    /// Failover node per shard, used while the primary's circuit is open.
    pub standby: Vec<u16>,
}

impl ShardMap {
    /// First-epoch map. `owner` and `standby` must be the same length.
    pub fn new(owner: Vec<u16>, standby: Vec<u16>) -> ShardMap {
        assert_eq!(owner.len(), standby.len(), "ragged shard map");
        ShardMap {
            epoch: 1,
            owner,
            standby,
        }
    }

    pub fn shards(&self) -> usize {
        self.owner.len()
    }

    /// A copy with `shard` reassigned and the epoch bumped — how a
    /// controller publishes a rebalance or a permanent failover.
    pub fn reassigned(&self, shard: usize, owner: u16, standby: u16) -> ShardMap {
        let mut next = self.clone();
        next.owner[shard] = owner;
        next.standby[shard] = standby;
        next.epoch += 1;
        next
    }

    /// Serialized size: epoch + per-shard (owner, standby) pairs.
    pub fn wire_bytes(&self) -> u64 {
        8 + self.owner.len() as u64 * 4
    }
}

/// Where [`ShardRouter::route`] decided to send a shard's request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The node to call.
    pub node: u16,
    /// False when the primary's circuit was open and the standby was
    /// chosen instead.
    pub primary: bool,
    /// Map epoch the decision was made under — send it with the request
    /// so the server can detect a stale client map.
    pub epoch: u64,
}

struct RouterTel {
    failovers: Counter,
    map_refreshes: Counter,
}

/// A client's cached, health-aware view of a [`ShardMap`].
pub struct ShardRouter {
    map: Mutex<Arc<ShardMap>>,
    health: TargetHealth,
    retry: RetryPolicy,
    tel: Mutex<Option<RouterTel>>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.map.lock().shards())
            .field("epoch", &self.map.lock().epoch)
            .field("nodes", &self.health.targets())
            .finish()
    }
}

impl ShardRouter {
    /// Route over `map` across `nodes` metadata nodes. The circuit opens
    /// after `threshold` consecutive failures for `cooldown`; `retry` is
    /// the per-call RPC budget callers should use with
    /// [`crate::rpc::RpcClient::try_call`].
    pub fn new(
        map: ShardMap,
        nodes: usize,
        threshold: u32,
        cooldown: Dur,
        retry: RetryPolicy,
    ) -> ShardRouter {
        ShardRouter {
            map: Mutex::new(Arc::new(map)),
            health: TargetHealth::new(nodes, threshold, cooldown),
            retry,
            tel: Mutex::new(None),
        }
    }

    /// Register `failovers` + `map_refreshes` counters and the underlying
    /// circuit-breaker gauges in `reg`.
    pub fn attach_telemetry(&self, reg: &Registry) {
        self.health.attach_telemetry(reg);
        *self.tel.lock() = Some(RouterTel {
            failovers: reg.counter("failovers"),
            map_refreshes: reg.counter("map_refreshes"),
        });
    }

    /// The currently cached map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.lock().clone()
    }

    pub fn epoch(&self) -> u64 {
        self.map.lock().epoch
    }

    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    pub fn health(&self) -> &TargetHealth {
        &self.health
    }

    /// Install a fresher map (a server piggybacked it on a reply, or the
    /// controller pushed it). Older or same-epoch maps are ignored so a
    /// delayed reply cannot roll the cache back. Returns whether the
    /// cache changed.
    pub fn install(&self, next: ShardMap) -> bool {
        let mut cur = self.map.lock();
        if next.epoch <= cur.epoch {
            return false;
        }
        *cur = Arc::new(next);
        if let Some(t) = self.tel.lock().as_ref() {
            t.map_refreshes.inc();
        }
        true
    }

    /// Pick the node to send `shard`'s request to at `now`: the primary
    /// owner while its circuit is closed (or it wins the half-open
    /// probe), otherwise the standby. With both circuits open the primary
    /// is returned anyway — the caller's retry policy, not the router,
    /// decides when to give up.
    pub fn route(&self, shard: usize, now: Time) -> Route {
        let map = self.map.lock().clone();
        let owner = map.owner[shard];
        let standby = map.standby[shard];
        let primary_ok = self.health.try_probe(owner as usize, now);
        let node = if primary_ok {
            owner
        } else if standby != owner && self.health.try_probe(standby as usize, now) {
            if let Some(t) = self.tel.lock().as_ref() {
                t.failovers.inc();
            }
            standby
        } else {
            owner
        };
        Route {
            node,
            primary: node == owner,
            epoch: map.epoch,
        }
    }

    /// Record the outcome of a routed call against the node's circuit.
    pub fn record_ok(&self, node: u16) {
        self.health.record_ok(node as usize);
    }

    pub fn record_failure(&self, node: u16, now: Time) {
        self.health.record_failure(node as usize, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> ShardRouter {
        ShardRouter::new(
            ShardMap::new(vec![0, 1, 2], vec![1, 2, 0]),
            3,
            2,
            Dur::micros(100),
            RetryPolicy::default(),
        )
    }

    #[test]
    fn routes_to_owner_then_standby_on_open_circuit() {
        let r = router();
        let t0 = Time::ZERO + Dur::micros(5);
        assert_eq!(
            r.route(1, t0),
            Route {
                node: 1,
                primary: true,
                epoch: 1
            }
        );
        r.record_failure(1, t0);
        r.record_failure(1, t0);
        let fo = r.route(1, t0 + Dur::micros(1));
        assert_eq!((fo.node, fo.primary), (2, false));
        // Success on a later probe closes the circuit again.
        r.record_ok(1);
        assert!(r.route(1, t0 + Dur::micros(2)).primary);
    }

    #[test]
    fn both_circuits_open_falls_back_to_owner() {
        let r = router();
        let t0 = Time::ZERO + Dur::micros(5);
        for n in [1u16, 2] {
            r.record_failure(n, t0);
            r.record_failure(n, t0);
        }
        let route = r.route(1, t0 + Dur::micros(1));
        assert_eq!((route.node, route.primary), (1, true));
    }

    #[test]
    fn install_accepts_only_newer_epochs() {
        let r = router();
        let stale = ShardMap::new(vec![2, 2, 2], vec![0, 0, 0]);
        assert!(!r.install(stale), "same epoch ignored");
        let fresh = r.map().reassigned(0, 2, 1);
        assert_eq!(fresh.epoch, 2);
        assert!(r.install(fresh.clone()));
        assert_eq!(r.epoch(), 2);
        assert_eq!(r.route(0, Time::ZERO).node, 2);
        assert!(!r.install(ShardMap::new(vec![0, 0, 0], vec![1, 1, 1])));
        assert_eq!(*r.map(), fresh);
    }

    #[test]
    fn telemetry_counts_failovers_and_refreshes() {
        let reg = Registry::new();
        let r = router();
        r.attach_telemetry(&reg.scoped("router"));
        let t0 = Time::ZERO + Dur::micros(5);
        r.record_failure(0, t0);
        r.record_failure(0, t0);
        let _ = r.route(0, t0 + Dur::micros(1));
        r.install(r.map().reassigned(2, 1, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("router.failovers"), 1);
        assert_eq!(snap.counter("router.map_refreshes"), 1);
        assert_eq!(snap.gauge("router.node0.target_up"), 0);
    }
}
