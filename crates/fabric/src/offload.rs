//! Target-resident compute for storage-side offload.
//!
//! The paper's Fig. 11 crossover appears when the fabric, not the device,
//! bounds remote reads: the target ships raw sample bytes and the trainer
//! pays decode/augment after the transfer. OffloadFS-style systems move
//! that compute *to the storage node*: the target reads the stored
//! (possibly compressed) chunk frames, decodes them on a small local
//! compute pool, and assembles the requested samples into one dense
//! response — one fabric transfer per node per mini-batch, carrying
//! exactly the sample bytes, with no per-command capsule/response overhead
//! and no block padding.
//!
//! [`OffloadScheduler`] is that compute pool plus its scheduling policy.
//! It is deliberately simple and deterministic: extent reads pipeline
//! through the backing device like any other command; each extent then
//! occupies one compute thread for its decode/augment cost; the response
//! ships when the last extent clears compute. [`NvmeOfTarget`]
//! (`nvmeof.rs`) embeds one scheduler per target and exposes the whole
//! request/process/respond exchange through
//! [`NvmeTarget::reserve_offload`](blocksim::NvmeTarget::reserve_offload).
//!
//! [`NvmeOfTarget`]: crate::nvmeof::NvmeOfTarget

use blocksim::{NvmeDevice, NvmeTarget, OffloadExtent};
use simkit::resource::Servers;
use simkit::time::Time;

use crate::rpc::WireSize;

/// Wire size of one extent descriptor inside an offload request capsule
/// (slba + block count + opcode/flags, NVMe-style packing).
pub const DESCRIPTOR_BYTES: u64 = 16;

/// The request side of an offload exchange, as it appears on the wire: a
/// command capsule carrying one descriptor per extent. Shares the RPC
/// layer's [`WireSize`] accounting so fabric byte ledgers agree across
/// the metadata and offload planes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OffloadRequestWire {
    /// Number of extent descriptors in the capsule.
    pub extents: usize,
}

impl WireSize for OffloadRequestWire {
    fn wire_bytes(&self) -> u64 {
        crate::nvmeof::CAPSULE_BYTES + self.extents as u64 * DESCRIPTOR_BYTES
    }
}

/// A storage node's offload engine: a pool of compute threads that
/// decode/augment chunk frames as their device reads land.
pub struct OffloadScheduler {
    compute: Servers,
}

impl OffloadScheduler {
    /// A pool of `threads` compute threads (clamped to at least one).
    pub fn new(threads: usize) -> OffloadScheduler {
        OffloadScheduler {
            compute: Servers::new(threads.max(1)),
        }
    }

    /// Reserve the read + compute stages for a batch issued to `device`
    /// at `issue`; returns the instant the assembled dense response is
    /// ready to ship. Reads all start at `issue` (the device's own
    /// queues serialize them); each extent's compute starts when its
    /// read completes and a pool thread frees up.
    pub fn reserve_batch(
        &self,
        issue: Time,
        device: &NvmeDevice,
        extents: &[OffloadExtent],
    ) -> Time {
        let mut ready = issue;
        for e in extents {
            let read_done = device.reserve_read(issue, e.slba, e.nblocks);
            ready = ready.max(self.compute.reserve(read_done, e.compute));
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blocksim::DeviceConfig;
    use simkit::prelude::*;

    fn extents(n: usize, nblocks: u32, compute: Dur) -> Vec<OffloadExtent> {
        (0..n)
            .map(|i| OffloadExtent {
                slba: i as u64 * nblocks as u64,
                nblocks,
                compute,
            })
            .collect()
    }

    #[test]
    fn request_wire_size_counts_descriptors() {
        let r = OffloadRequestWire { extents: 5 };
        assert_eq!(
            r.wire_bytes(),
            crate::nvmeof::CAPSULE_BYTES + 5 * DESCRIPTOR_BYTES
        );
    }

    #[test]
    fn compute_pool_bounds_batch_completion() {
        Runtime::simulate(0, |rt| {
            let dev = NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10)));
            let exts = extents(8, 16, Dur::micros(50));
            // One thread: decode is strictly serialized, so the batch
            // takes at least 8 × 50 µs of compute.
            let one = OffloadScheduler::new(1).reserve_batch(rt.now(), &dev, &exts);
            assert!(one - rt.now() >= Dur::micros(8 * 50), "got {:?}", one);
            // Four threads overlap decode with reads and each other.
            let four = OffloadScheduler::new(4).reserve_batch(rt.now(), &dev, &exts);
            assert!(four < one, "more compute threads must not be slower");
        });
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        Runtime::simulate(0, |rt| {
            let dev = NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10)));
            let t = OffloadScheduler::new(0).reserve_batch(
                rt.now(),
                &dev,
                &extents(1, 8, Dur::micros(5)),
            );
            assert!(t > rt.now());
        });
    }
}
