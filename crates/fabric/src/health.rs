//! Per-target health tracking with a simple circuit breaker.
//!
//! Consumers of remote targets (octofs reads, lookup clients) record
//! per-target successes and failures here. After `threshold` consecutive
//! failures the target's circuit *opens* for a virtual-time `cooldown`:
//! [`TargetHealth::available`] reports it down, letting callers fail over
//! to a replica instead of burning their retry budget on a dead node. Once
//! the cooldown expires the circuit is half-open — the next caller may
//! probe the target, and a recorded success closes it fully.

use simkit::plock::Mutex;
use simkit::telemetry::{Counter, Gauge, Registry};
use simkit::time::{Dur, Time};

#[derive(Clone, Copy, Debug, Default)]
struct HealthState {
    consecutive_failures: u32,
    open_until: Option<Time>,
    /// When the circuit first transitioned closed → open for the current
    /// outage. Survives cooldown re-arms and failed probes; cleared only
    /// by a recorded success. Lets a membership layer measure how long a
    /// target has been continuously unhealthy.
    open_since: Option<Time>,
}

struct HealthTel {
    /// Per-target availability gauge (1 = circuit closed).
    target_up: Vec<Gauge>,
    /// Times any circuit transitioned closed → open.
    circuit_opens: Counter,
}

/// Consecutive-failure circuit breaker over a fixed set of targets.
pub struct TargetHealth {
    threshold: u32,
    cooldown: Dur,
    states: Vec<Mutex<HealthState>>,
    tel: Mutex<Option<HealthTel>>,
}

impl std::fmt::Debug for TargetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetHealth")
            .field("targets", &self.states.len())
            .field("threshold", &self.threshold)
            .field("cooldown", &self.cooldown)
            .finish()
    }
}

impl TargetHealth {
    /// Track `targets` targets; open a circuit after `threshold`
    /// consecutive failures, for `cooldown` of virtual time.
    pub fn new(targets: usize, threshold: u32, cooldown: Dur) -> TargetHealth {
        assert!(threshold > 0, "threshold must be at least 1");
        TargetHealth {
            threshold,
            cooldown,
            states: (0..targets)
                .map(|_| Mutex::new(HealthState::default()))
                .collect(),
            tel: Mutex::new(None),
        }
    }

    /// Register per-target `target_up` gauges and the `circuit_opens`
    /// counter in `reg` (e.g. a registry scoped to `octofs.health`).
    pub fn attach_telemetry(&self, reg: &Registry) {
        let target_up: Vec<Gauge> = (0..self.states.len())
            .map(|n| reg.gauge(&format!("node{n}.target_up")))
            .collect();
        for g in &target_up {
            g.set(1);
        }
        *self.tel.lock() = Some(HealthTel {
            target_up,
            circuit_opens: reg.counter("circuit_opens"),
        });
    }

    pub fn targets(&self) -> usize {
        self.states.len()
    }

    /// Is the target's circuit closed (or half-open) at `now`?
    pub fn available(&self, target: usize, now: Time) -> bool {
        match self.states[target].lock().open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// Like [`available`](Self::available), but grants the half-open probe
    /// to exactly one caller per cooldown expiry: the first caller to see
    /// an expired cooldown re-arms it (`now + cooldown`) and gets `true`;
    /// concurrent callers at the same instant see the circuit open again
    /// and route elsewhere. If the probe never resolves, the next expiry
    /// grants a fresh one. Closed circuits always return `true`.
    pub fn try_probe(&self, target: usize, now: Time) -> bool {
        let mut st = self.states[target].lock();
        match st.open_until {
            None => true,
            Some(until) if now < until => false,
            Some(_) => {
                st.open_until = Some(now + self.cooldown);
                true
            }
        }
    }

    /// When the target's circuit first opened for the current outage, or
    /// `None` while it is closed. Re-arms and failed half-open probes do
    /// not reset this — only a recorded success does.
    pub fn open_since(&self, target: usize) -> Option<Time> {
        self.states[target].lock().open_since
    }

    /// Record a successful operation: closes the circuit and zeroes the
    /// failure streak.
    pub fn record_ok(&self, target: usize) {
        let mut st = self.states[target].lock();
        st.consecutive_failures = 0;
        st.open_until = None;
        st.open_since = None;
        if let Some(t) = self.tel.lock().as_ref() {
            t.target_up[target].set(1);
        }
    }

    /// Record a failed operation at `now`. Returns `true` when this failure
    /// opened (or re-armed) the circuit.
    pub fn record_failure(&self, target: usize, now: Time) -> bool {
        let mut st = self.states[target].lock();
        st.consecutive_failures += 1;
        if st.consecutive_failures < self.threshold {
            return false;
        }
        let was_open = st.open_until.is_some_and(|until| now < until);
        st.open_until = Some(now + self.cooldown);
        if st.open_since.is_none() {
            st.open_since = Some(now);
        }
        if let Some(t) = self.tel.lock().as_ref() {
            t.target_up[target].set(0);
            if !was_open {
                t.circuit_opens.inc();
            }
        }
        !was_open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_cools_down() {
        let h = TargetHealth::new(2, 3, Dur::micros(100));
        let t0 = Time::ZERO + Dur::micros(10);
        assert!(h.available(0, t0));
        assert!(!h.record_failure(0, t0));
        assert!(!h.record_failure(0, t0));
        assert!(h.available(0, t0), "still closed below threshold");
        assert!(h.record_failure(0, t0), "third strike opens");
        assert!(!h.available(0, t0));
        assert!(!h.available(0, t0 + Dur::micros(99)));
        // Half-open after the cooldown: callers may probe again.
        assert!(h.available(0, t0 + Dur::micros(100)));
        // Other targets unaffected.
        assert!(h.available(1, t0));
    }

    #[test]
    fn success_closes_and_resets_streak() {
        let h = TargetHealth::new(1, 2, Dur::micros(50));
        let t0 = Time::ZERO;
        h.record_failure(0, t0);
        h.record_ok(0);
        assert!(!h.record_failure(0, t0), "streak was reset");
        assert!(h.record_failure(0, t0));
        assert!(!h.available(0, t0));
        h.record_ok(0);
        assert!(h.available(0, t0));
    }

    #[test]
    fn half_open_grants_a_single_probe() {
        let h = TargetHealth::new(1, 1, Dur::micros(100));
        let t0 = Time::ZERO + Dur::micros(5);
        assert!(h.try_probe(0, t0), "closed circuit: everyone may call");
        assert!(h.try_probe(0, t0), "closed circuit: no probe accounting");
        h.record_failure(0, t0);
        assert!(!h.try_probe(0, t0 + Dur::micros(99)), "still cooling down");
        let half_open = t0 + Dur::micros(100);
        assert!(h.try_probe(0, half_open), "first caller wins the probe");
        assert!(
            !h.try_probe(0, half_open),
            "second concurrent caller is turned away"
        );
        assert!(
            !h.try_probe(0, half_open + Dur::micros(99)),
            "probe re-armed the cooldown"
        );
        // The granted probe never resolved; the next expiry offers a new one.
        assert!(h.try_probe(0, half_open + Dur::micros(100)));
        // A successful probe closes the circuit for everyone.
        h.record_ok(0);
        assert!(h.try_probe(0, half_open + Dur::micros(101)));
        assert!(h.try_probe(0, half_open + Dur::micros(101)));
    }

    #[test]
    fn open_since_survives_rearms_until_success() {
        let h = TargetHealth::new(1, 2, Dur::micros(50));
        let t0 = Time::ZERO + Dur::micros(10);
        assert_eq!(h.open_since(0), None);
        h.record_failure(0, t0);
        assert_eq!(h.open_since(0), None, "below threshold: not open yet");
        h.record_failure(0, t0 + Dur::micros(1));
        assert_eq!(h.open_since(0), Some(t0 + Dur::micros(1)));
        // Post-threshold failures re-arm the cooldown but keep the origin.
        h.record_failure(0, t0 + Dur::micros(40));
        assert_eq!(h.open_since(0), Some(t0 + Dur::micros(1)));
        // A failed half-open probe keeps it too.
        assert!(h.try_probe(0, t0 + Dur::micros(95)));
        assert_eq!(h.open_since(0), Some(t0 + Dur::micros(1)));
        h.record_ok(0);
        assert_eq!(h.open_since(0), None);
    }

    #[test]
    fn telemetry_tracks_state() {
        let reg = Registry::new();
        let h = TargetHealth::new(2, 1, Dur::micros(10));
        h.attach_telemetry(&reg.scoped("health"));
        let t0 = Time::ZERO;
        h.record_failure(1, t0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("health.node0.target_up"), 1);
        assert_eq!(snap.gauge("health.node1.target_up"), 0);
        assert_eq!(snap.counter("health.circuit_opens"), 1);
        h.record_ok(1);
        assert_eq!(reg.snapshot().gauge("health.node1.target_up"), 1);
    }
}
