//! One-sided RDMA verbs over registered memory regions.
//!
//! NVMe-oF and Octopus both ride on RDMA (paper §II-A: "NVMe-oF clients and
//! targets can perform zero-copy data transfers in an OS-bypass manner").
//! This module exposes the underlying verbs directly: register a memory
//! region on a node, then `read`/`write` it from any peer without involving
//! the remote CPU — only the wire and the local post/completion overheads
//! are paid.

use std::sync::Arc;

use simkit::plock::Mutex;
use simkit::runtime::Runtime;
use simkit::time::Dur;

use crate::topology::Cluster;

/// CPU cost to post one verb and reap its completion.
pub const VERB_POST_COST: Dur = Dur::nanos(600);

/// Wire overhead of a one-sided request header.
pub const VERB_HEADER_BYTES: u64 = 28;

/// A registered, remotely accessible memory region pinned on one node.
#[derive(Clone)]
pub struct MemoryRegion {
    node: usize,
    data: Arc<Mutex<Vec<u8>>>,
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("node", &self.node)
            .field("len", &self.data.lock().len())
            .finish()
    }
}

impl MemoryRegion {
    /// Register `len` zeroed bytes on `node`.
    pub fn register(node: usize, len: usize) -> MemoryRegion {
        MemoryRegion {
            node,
            data: Arc::new(Mutex::new(vec![0u8; len])),
        }
    }

    pub fn node(&self) -> usize {
        self.node
    }

    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local (untimed) access for the owning node's software.
    pub fn local_write(&self, offset: usize, src: &[u8]) {
        let mut g = self.data.lock();
        g[offset..offset + src.len()].copy_from_slice(src);
    }

    pub fn local_read(&self, offset: usize, dst: &mut [u8]) {
        let g = self.data.lock();
        dst.copy_from_slice(&g[offset..offset + dst.len()]);
    }
}

/// An RDMA queue pair between a local node and the fabric.
#[derive(Clone)]
pub struct RdmaQp {
    cluster: Arc<Cluster>,
    local: usize,
}

impl std::fmt::Debug for RdmaQp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdmaQp")
            .field("local", &self.local)
            .finish()
    }
}

impl RdmaQp {
    pub fn new(cluster: Arc<Cluster>, local: usize) -> RdmaQp {
        assert!(local < cluster.len(), "bad node id");
        RdmaQp { cluster, local }
    }

    pub fn node(&self) -> usize {
        self.local
    }

    /// One-sided RDMA READ: fetch `dst.len()` bytes from `mr` at `offset`
    /// into local memory. The remote CPU is not involved. Blocks (in
    /// virtual time) until the payload has arrived.
    pub fn read(&self, rt: &Runtime, mr: &MemoryRegion, offset: usize, dst: &mut [u8]) {
        rt.work(VERB_POST_COST);
        if mr.node != self.local {
            // Request header out, payload back.
            let t1 =
                self.cluster
                    .reserve_transfer(rt.now(), self.local, mr.node, VERB_HEADER_BYTES);
            let t2 = self
                .cluster
                .reserve_transfer(t1, mr.node, self.local, dst.len() as u64);
            let now = rt.now();
            if t2 > now {
                rt.sleep(t2 - now);
            }
        }
        mr.local_read(offset, dst);
    }

    /// One-sided RDMA WRITE: push `src` into `mr` at `offset`.
    pub fn write(&self, rt: &Runtime, mr: &MemoryRegion, offset: usize, src: &[u8]) {
        rt.work(VERB_POST_COST);
        if mr.node != self.local {
            let t1 = self.cluster.reserve_transfer(
                rt.now(),
                self.local,
                mr.node,
                VERB_HEADER_BYTES + src.len() as u64,
            );
            let now = rt.now();
            if t1 > now {
                rt.sleep(t1 - now);
            }
        }
        mr.local_write(offset, src);
    }

    /// 8-byte remote atomic fetch-and-add at `offset` (little-endian
    /// counter), as used by RDMA-native data structures. One round trip.
    pub fn fetch_add_u64(&self, rt: &Runtime, mr: &MemoryRegion, offset: usize, delta: u64) -> u64 {
        rt.work(VERB_POST_COST);
        if mr.node != self.local {
            let t1 =
                self.cluster
                    .reserve_transfer(rt.now(), self.local, mr.node, VERB_HEADER_BYTES + 8);
            let t2 = self.cluster.reserve_transfer(t1, mr.node, self.local, 8);
            let now = rt.now();
            if t2 > now {
                rt.sleep(t2 - now);
            }
        }
        let mut g = mr.data.lock();
        let mut cur = [0u8; 8];
        cur.copy_from_slice(&g[offset..offset + 8]);
        let old = u64::from_le_bytes(cur);
        g[offset..offset + 8].copy_from_slice(&(old.wrapping_add(delta)).to_le_bytes());
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricConfig;

    fn cluster(n: usize) -> Arc<Cluster> {
        Arc::new(Cluster::new(n, FabricConfig::default()))
    }

    #[test]
    fn remote_read_write_roundtrip() {
        Runtime::simulate(0, |rt| {
            let c = cluster(2);
            let mr = MemoryRegion::register(1, 4096);
            let qp = RdmaQp::new(c, 0);
            let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
            qp.write(rt, &mr, 100, &payload);
            let mut out = vec![0u8; 1000];
            qp.read(rt, &mr, 100, &mut out);
            assert_eq!(out, payload);
        });
    }

    #[test]
    fn read_pays_a_round_trip_write_pays_one_way() {
        Runtime::simulate(0, |rt| {
            let c = cluster(2);
            let mr = MemoryRegion::register(1, 1 << 20);
            let qp = RdmaQp::new(c.clone(), 0);
            let one_way = c.config().base_one_way();
            let t0 = rt.now();
            qp.write(rt, &mr, 0, &[0u8; 64]);
            let w = rt.now() - t0;
            let t1 = rt.now();
            let mut buf = [0u8; 64];
            qp.read(rt, &mr, 0, &mut buf);
            let r = rt.now() - t1;
            assert!(w >= one_way && w < one_way * 2, "write {w:?}");
            assert!(r >= one_way * 2, "read {r:?} must be a round trip");
        });
    }

    #[test]
    fn local_access_skips_the_wire() {
        Runtime::simulate(0, |rt| {
            let c = cluster(2);
            let mr = MemoryRegion::register(0, 4096);
            let qp = RdmaQp::new(c, 0);
            let t0 = rt.now();
            qp.write(rt, &mr, 0, &[5u8; 1024]);
            let mut out = [0u8; 1024];
            qp.read(rt, &mr, 0, &mut out);
            // Only the post costs; no network time.
            assert_eq!((rt.now() - t0).as_nanos(), 2 * VERB_POST_COST.as_nanos());
            assert!(out.iter().all(|&b| b == 5));
        });
    }

    #[test]
    fn remote_atomics_serialize_counters() {
        Runtime::simulate(0, |rt| {
            let c = cluster(3);
            let mr = MemoryRegion::register(2, 64);
            let mut handles = Vec::new();
            for n in 0..2usize {
                let qp = RdmaQp::new(c.clone(), n);
                let mr = mr.clone();
                handles.push(rt.spawn_with(&format!("client{n}"), move |rt| {
                    let mut olds = Vec::new();
                    for _ in 0..10 {
                        olds.push(qp.fetch_add_u64(rt, &mr, 0, 1));
                    }
                    olds
                }));
            }
            let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join()).collect();
            all.sort_unstable();
            // 20 increments: the observed old values are exactly 0..20.
            assert_eq!(all, (0..20).collect::<Vec<u64>>());
            let mut fin = [0u8; 8];
            mr.local_read(0, &mut fin);
            assert_eq!(u64::from_le_bytes(fin), 20);
        });
    }

    #[test]
    fn bulk_reads_are_bandwidth_bound() {
        Runtime::simulate(0, |rt| {
            let c = cluster(2);
            let mr = MemoryRegion::register(1, 8 << 20);
            let qp = RdmaQp::new(c.clone(), 0);
            let mut buf = vec![0u8; 4 << 20];
            let t0 = rt.now();
            qp.read(rt, &mr, 0, &mut buf);
            let dt = (rt.now() - t0).as_secs_f64();
            let bw = (4 << 20) as f64 / dt;
            let nic = c.config().nic_bytes_per_sec;
            assert!(bw > nic * 0.8 && bw <= nic * 1.01, "bw {bw}");
        });
    }
}
