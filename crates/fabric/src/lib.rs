//! # fabric — RDMA interconnect and NVMe over Fabrics simulation
//!
//! Models the paper's FDR InfiniBand testbed: per-node full-duplex NICs
//! behind a non-blocking switch ([`topology::Cluster`]), SPDK-style NVMe-oF
//! targets exporting devices to remote clients ([`nvmeof`]), and an RDMA
//! send/recv RPC layer ([`rpc`]) used for metadata protocols.
//!
//! The crucial property (paper §II-A) is preserved: a remote NVMe device
//! behaves like a local one plus a few microseconds, reached through the
//! very same `IoQPair` interface, and data lands zero-copy in registered
//! DMA buffers.

//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use blocksim::{DeviceConfig, DmaBuf, IoQPair, NvmeDevice};
//! use fabric::{connect, Cluster, FabricConfig, NvmeOfTarget, TargetConfig};
//! use simkit::prelude::*;
//!
//! let ((), _) = Runtime::simulate(7, |rt| {
//!     let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
//!     let dev = NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10)));
//!     dev.storage().write_at(0, b"remote bytes");
//!     let target = NvmeOfTarget::new(1, dev, TargetConfig::default());
//!     // Node 0 reads node 1's device through an ordinary qpair.
//!     let remote = connect(cluster, 0, target);
//!     let mut qp = IoQPair::new(remote, 16);
//!     let buf = DmaBuf::standalone(512);
//!     qp.submit_read(rt, 1, 0, 1, buf.clone(), 0).unwrap();
//!     qp.drain(rt, Dur::nanos(100));
//!     buf.with(|d| assert_eq!(&d[..12], b"remote bytes"));
//! });
//! ```

#![forbid(unsafe_code)]

pub mod fault;
pub mod health;
pub mod membership;
pub mod nvmeof;
pub mod offload;
pub mod rdma;
pub mod rpc;
pub mod shard;
pub mod topology;

pub use fault::{FabricFault, FabricFaultInjector};
pub use health::TargetHealth;
pub use membership::{Membership, MembershipPolicy, NodeState};
pub use nvmeof::{
    connect, NvmeOfTarget, RemoteTarget, TargetConfig, CAPSULE_BYTES, RESPONSE_BYTES,
};
pub use offload::{OffloadRequestWire, OffloadScheduler, DESCRIPTOR_BYTES};
pub use rdma::{MemoryRegion, RdmaQp};
pub use rpc::{serve, RpcClient, RpcError, WireSize};
pub use shard::{Route, ShardMap, ShardRouter};
pub use topology::{Cluster, FabricConfig};
