//! Deterministic fabric-level fault injection.
//!
//! The block layer already injects *device* faults (media errors, latency
//! spikes); this module adds the failure modes that only exist once storage
//! is disaggregated: dropped or delayed RPC capsules, links that flap on a
//! fixed down/up schedule, and whole targets that crash and restart at
//! scheduled virtual instants. The injector follows the same replay
//! discipline as [`blocksim::FaultInjector`] — a SplitMix64 step keyed on
//! `(seed, decision-counter)` — so a failing run replays bit-identically.
//!
//! Attach one injector per [`Cluster`](crate::Cluster) via
//! [`Cluster::set_faults`](crate::Cluster::set_faults); the NVMe-oF client
//! ([`RemoteTarget`](crate::RemoteTarget)) and the RPC layer consult it on
//! every submission. A dropped command still *reserves* the modelled path
//! (the initiator cannot know it will vanish), and the initiator observes
//! the loss only after the configured I/O timeout.

use std::sync::atomic::{AtomicU64, Ordering};

use simkit::plock::Mutex;
use simkit::telemetry::{Counter, Gauge, Registry};
use simkit::time::{Dur, Time};

/// Fate of one fabric traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricFault {
    /// Delivered normally.
    Healthy,
    /// Delivered after an extra queueing/derouting delay.
    Delay(Dur),
    /// Never delivered. The initiator notices after `detect_after` (its
    /// I/O timeout) and must retry or fail over.
    Dropped { detect_after: Dur },
}

impl FabricFault {
    pub fn is_dropped(self) -> bool {
        matches!(self, FabricFault::Dropped { .. })
    }
}

/// A scheduled whole-target outage: every message to or from `node` is
/// dropped while `down_at <= now < up_at`.
#[derive(Clone, Copy, Debug)]
struct CrashWindow {
    node: usize,
    down_at: Time,
    up_at: Time,
}

/// A deterministic link flap: `node`'s link is down during
/// `[first_down + k*period, first_down + k*period + down_for)` for
/// `k < cycles`.
#[derive(Clone, Copy, Debug)]
struct LinkFlap {
    node: usize,
    first_down: Time,
    down_for: Dur,
    period: Dur,
    cycles: u32,
}

impl LinkFlap {
    fn is_down(&self, now: Time) -> bool {
        if now < self.first_down {
            return false;
        }
        let since = (now - self.first_down).as_nanos();
        let period = self.period.as_nanos().max(1);
        let k = since / period;
        k < self.cycles as u64 && since % period < self.down_for.as_nanos()
    }
}

struct FaultTel {
    /// Messages dropped by the random die.
    drops: Counter,
    /// Messages dropped because an endpoint was crashed or its link down.
    outage_drops: Counter,
    /// Messages delayed by the random die.
    delays: Counter,
    /// Per-node reachability gauge (1 = up), refreshed on every decision
    /// touching the node.
    target_up: Vec<Gauge>,
}

/// Seeded fabric fault model for one cluster.
pub struct FabricFaultInjector {
    seed: u64,
    counter: AtomicU64,
    /// Probability a message is dropped, in parts per million.
    pub drop_ppm: u32,
    /// Probability a message is delayed, in parts per million.
    pub delay_ppm: u32,
    /// Added delay when the delay die fires.
    pub delay_extra: Dur,
    /// How long an initiator waits before declaring a dropped command lost.
    pub io_timeout: Dur,
    crashes: Vec<CrashWindow>,
    flaps: Vec<LinkFlap>,
    tel: Mutex<Option<FaultTel>>,
}

impl std::fmt::Debug for FabricFaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricFaultInjector")
            .field("seed", &self.seed)
            .field("drop_ppm", &self.drop_ppm)
            .field("delay_ppm", &self.delay_ppm)
            .field("crashes", &self.crashes.len())
            .field("flaps", &self.flaps.len())
            .finish()
    }
}

impl FabricFaultInjector {
    pub fn new(seed: u64) -> FabricFaultInjector {
        FabricFaultInjector {
            seed,
            counter: AtomicU64::new(0),
            drop_ppm: 0,
            delay_ppm: 0,
            delay_extra: Dur::ZERO,
            io_timeout: Dur::micros(50),
            crashes: Vec::new(),
            flaps: Vec::new(),
            tel: Mutex::new(None),
        }
    }

    /// Drop messages at the given rate.
    pub fn with_drops(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Delay messages at the given rate by `extra`.
    pub fn with_delays(mut self, ppm: u32, extra: Dur) -> Self {
        self.delay_ppm = ppm;
        self.delay_extra = extra;
        self
    }

    /// Set how long initiators wait before declaring a command lost.
    pub fn with_io_timeout(mut self, timeout: Dur) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Crash `node` at `down_at`, restarting it at `up_at`.
    pub fn with_crash(mut self, node: usize, down_at: Time, up_at: Time) -> Self {
        assert!(down_at < up_at, "crash window must be non-empty");
        self.crashes.push(CrashWindow {
            node,
            down_at,
            up_at,
        });
        self
    }

    /// Flap `node`'s link: down for `down_for` at the start of each of
    /// `cycles` periods of `period`, beginning at `first_down`.
    pub fn with_link_flap(
        mut self,
        node: usize,
        first_down: Time,
        down_for: Dur,
        period: Dur,
        cycles: u32,
    ) -> Self {
        assert!(
            down_for < period,
            "flap must come back up within its period"
        );
        self.flaps.push(LinkFlap {
            node,
            first_down,
            down_for,
            period,
            cycles,
        });
        self
    }

    /// Register counters and per-node `target_up` gauges in `reg`
    /// (typically scoped to `fabric.faults`). Called by
    /// [`Cluster::set_faults`](crate::Cluster::set_faults).
    pub fn attach_telemetry(&self, reg: &Registry, nodes: usize) {
        let target_up: Vec<Gauge> = (0..nodes)
            .map(|n| reg.gauge(&format!("node{n}.target_up")))
            .collect();
        for g in &target_up {
            g.set(1);
        }
        *self.tel.lock() = Some(FaultTel {
            drops: reg.counter("drops"),
            outage_drops: reg.counter("outage_drops"),
            delays: reg.counter("delays"),
            target_up,
        });
    }

    /// Is `node` reachable at `now` (not crashed, link not flapped down)?
    pub fn node_up(&self, node: usize, now: Time) -> bool {
        let crashed = self
            .crashes
            .iter()
            .any(|c| c.node == node && c.down_at <= now && now < c.up_at);
        let flapped = self.flaps.iter().any(|f| f.node == node && f.is_down(now));
        !crashed && !flapped
    }

    /// Decide the fate of one `from → to` message at `now`.
    ///
    /// The seeded die advances on *every* call, so adding a crash window or
    /// a flap schedule does not shift the random drop/delay sequence — the
    /// healthy part of the run replays unchanged.
    pub fn decide(&self, now: Time, from: usize, to: usize) -> FabricFault {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 step keyed on (seed, n), as in blocksim's injector.
        let mut z = self.seed ^ n.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;

        let tel = self.tel.lock();
        if let Some(t) = tel.as_ref() {
            for node in [from, to] {
                if let Some(g) = t.target_up.get(node) {
                    g.set(self.node_up(node, now) as i64);
                }
            }
        }
        if !self.node_up(from, now) || !self.node_up(to, now) {
            if let Some(t) = tel.as_ref() {
                t.outage_drops.inc();
            }
            return FabricFault::Dropped {
                detect_after: self.io_timeout,
            };
        }
        let die = (z % 1_000_000) as u32;
        if die < self.drop_ppm {
            if let Some(t) = tel.as_ref() {
                t.drops.inc();
            }
            return FabricFault::Dropped {
                detect_after: self.io_timeout,
            };
        }
        let die2 = ((z >> 32) % 1_000_000) as u32;
        if die2 < self.delay_ppm {
            if let Some(t) = tel.as_ref() {
                t.delays.inc();
            }
            return FabricFault::Delay(self.delay_extra);
        }
        FabricFault::Healthy
    }

    /// Messages decided so far.
    pub fn decisions(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_by_default() {
        let f = FabricFaultInjector::new(1);
        for i in 0..1000 {
            assert_eq!(
                f.decide(Time::ZERO + Dur::nanos(i), 0, 1),
                FabricFault::Healthy
            );
        }
    }

    #[test]
    fn drop_rate_is_approximate_and_deterministic() {
        let run = || {
            let f = FabricFaultInjector::new(9).with_drops(50_000); // 5%
            (0..20_000)
                .map(|_| f.decide(Time::ZERO, 0, 1).is_dropped())
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        let drops = a.iter().filter(|&&d| d).count();
        let rate = drops as f64 / 20_000.0;
        assert!((0.04..0.06).contains(&rate), "rate {rate}");
    }

    #[test]
    fn crash_window_drops_everything_then_recovers() {
        let f = FabricFaultInjector::new(2).with_crash(
            1,
            Time::ZERO + Dur::micros(10),
            Time::ZERO + Dur::micros(20),
        );
        assert_eq!(
            f.decide(Time::ZERO + Dur::micros(5), 0, 1),
            FabricFault::Healthy
        );
        assert!(f.decide(Time::ZERO + Dur::micros(10), 0, 1).is_dropped());
        // Direction does not matter: the node is gone.
        assert!(f.decide(Time::ZERO + Dur::micros(15), 1, 0).is_dropped());
        // Other nodes unaffected.
        assert_eq!(
            f.decide(Time::ZERO + Dur::micros(15), 0, 2),
            FabricFault::Healthy
        );
        assert_eq!(
            f.decide(Time::ZERO + Dur::micros(20), 0, 1),
            FabricFault::Healthy
        );
    }

    #[test]
    fn flap_schedule_is_periodic_and_bounded() {
        let f = FabricFaultInjector::new(3).with_link_flap(
            0,
            Time::ZERO + Dur::micros(100),
            Dur::micros(10),
            Dur::micros(50),
            2,
        );
        let at = |us| Time::ZERO + Dur::micros(us);
        assert!(f.node_up(0, at(99)));
        assert!(!f.node_up(0, at(100)));
        assert!(!f.node_up(0, at(109)));
        assert!(f.node_up(0, at(110)));
        // Second cycle.
        assert!(!f.node_up(0, at(150)));
        assert!(f.node_up(0, at(160)));
        // Cycle budget spent: stays up forever after.
        assert!(f.node_up(0, at(200)));
        assert!(f.node_up(0, at(10_000)));
    }

    #[test]
    fn schedules_do_not_shift_the_random_stream() {
        let seq = |f: &FabricFaultInjector| {
            (0..500)
                .map(|_| f.decide(Time::ZERO, 0, 1).is_dropped())
                .collect::<Vec<_>>()
        };
        let plain = FabricFaultInjector::new(4).with_drops(100_000);
        let scheduled = FabricFaultInjector::new(4).with_drops(100_000).with_crash(
            2,
            Time::ZERO + Dur::micros(1),
            Time::ZERO + Dur::micros(2),
        );
        assert_eq!(seq(&plain), seq(&scheduled));
    }

    #[test]
    fn delays_fire_independently() {
        let f = FabricFaultInjector::new(5).with_delays(500_000, Dur::micros(7));
        let delayed = (0..2000)
            .filter(|_| matches!(f.decide(Time::ZERO, 0, 1), FabricFault::Delay(_)))
            .count();
        assert!((800..1200).contains(&delayed), "{delayed}");
    }
}
