//! Cluster network topology: per-node NICs connected by a non-blocking
//! switch, as on the paper's FDR InfiniBand testbed.
//!
//! Each node has a full-duplex NIC modelled as two serialized [`Link`]s
//! (egress and ingress). The switch has full bisection bandwidth, so a
//! transfer contends only on the sender's egress and the receiver's
//! ingress — which is exactly the mechanism behind Fig. 11's single-client
//! bottleneck: one client's ingress NIC caps the aggregate bandwidth of
//! many remote NVMe devices.

use std::sync::Arc;

use simkit::resource::Link;
use simkit::telemetry::{Counter, Histo, Registry, Snapshot};
use simkit::time::{Dur, Time};

use crate::fault::{FabricFault, FabricFaultInjector};

/// Network parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Per-direction NIC bandwidth (bytes/s). FDR InfiniBand 4x ≈ 6.8 GB/s.
    pub nic_bytes_per_sec: f64,
    /// NIC serialization/propagation latency per traversal.
    pub nic_latency: Dur,
    /// Switch forwarding latency.
    pub switch_latency: Dur,
    /// RDMA verbs processing per message (post + completion).
    pub rdma_overhead: Dur,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nic_bytes_per_sec: 6.8e9,
            nic_latency: Dur::nanos(700),
            switch_latency: Dur::nanos(300),
            rdma_overhead: Dur::nanos(900),
        }
    }
}

impl FabricConfig {
    /// One-way latency for a minimal message on an idle network. The
    /// switch is cut-through, so the NIC latency term is paid once.
    pub fn base_one_way(&self) -> Dur {
        self.rdma_overhead + self.nic_latency + self.switch_latency
    }
}

struct NodePort {
    tx: Link,
    rx: Link,
    tx_bytes: Counter,
    rx_bytes: Counter,
}

/// The cluster interconnect. Cheap to share via `Arc`.
pub struct Cluster {
    cfg: FabricConfig,
    nodes: Vec<NodePort>,
    registry: Registry,
    transfers: Counter,
    transfer_ns: Histo,
    faults: simkit::plock::Mutex<Option<Arc<FabricFaultInjector>>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl Cluster {
    pub fn new(nodes: usize, cfg: FabricConfig) -> Cluster {
        Cluster::with_registry(nodes, cfg, &Registry::new())
    }

    /// Build a cluster whose telemetry lives under `fabric.*` in `reg`.
    /// `reg` itself is retained as the shared root, so layers above the
    /// fabric (RPC endpoints, octofs) can scope their own prefixes off it.
    pub fn with_registry(nodes: usize, cfg: FabricConfig, reg: &Registry) -> Cluster {
        assert!(nodes > 0);
        let scope = reg.scoped("fabric");
        let mk = |n: usize| NodePort {
            tx: Link::new(cfg.nic_bytes_per_sec, cfg.nic_latency),
            rx: Link::new(cfg.nic_bytes_per_sec, cfg.nic_latency),
            tx_bytes: scope.counter(&format!("nic{n}.tx_bytes")),
            rx_bytes: scope.counter(&format!("nic{n}.rx_bytes")),
        };
        Cluster {
            nodes: (0..nodes).map(mk).collect(),
            transfers: scope.counter("transfers"),
            transfer_ns: scope.histogram("transfer_ns"),
            registry: reg.clone(),
            cfg,
            faults: simkit::plock::Mutex::new(None),
        }
    }

    /// Attach a fabric fault injector; its counters and per-node
    /// `target_up` gauges register under `fabric.faults.*`. Returns the
    /// shared handle for schedule inspection in tests.
    pub fn set_faults(&self, injector: FabricFaultInjector) -> Arc<FabricFaultInjector> {
        injector.attach_telemetry(&self.registry.scoped("fabric.faults"), self.len());
        let injector = Arc::new(injector);
        *self.faults.lock() = Some(injector.clone());
        injector
    }

    /// The attached fault injector, if any.
    pub fn faults(&self) -> Option<Arc<FabricFaultInjector>> {
        self.faults.lock().clone()
    }

    /// Decide the fate of one `from → to` message at `now`; healthy when no
    /// injector is attached.
    pub fn fault_decide(&self, now: Time, from: usize, to: usize) -> FabricFault {
        match self.faults.lock().as_ref() {
            Some(f) => f.decide(now, from, to),
            None => FabricFault::Healthy,
        }
    }

    /// The shared root registry this cluster records its `fabric.*`
    /// metrics in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the fabric metrics (NIC byte counters, transfer stats).
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Reserve the path `from → switch → to` for `bytes`; returns the
    /// arrival instant. Loopback (from == to) costs only the RDMA overhead.
    ///
    /// The switch is cut-through: egress and ingress serialize the payload
    /// *concurrently* (packets pipeline through the switch), so an
    /// uncontended transfer pays the wire once; under contention the busier
    /// of the two ports governs.
    pub fn reserve_transfer(&self, now: Time, from: usize, to: usize, bytes: u64) -> Time {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "bad node id"
        );
        self.transfers.inc();
        if from == to {
            let done = now + self.cfg.rdma_overhead;
            self.transfer_ns.record_dur(done - now);
            return done;
        }
        let t0 = now + self.cfg.rdma_overhead;
        let tx_done = self.nodes[from].tx.reserve(t0, bytes) + self.cfg.switch_latency;
        let rx_done = self.nodes[to]
            .rx
            .reserve(t0 + self.cfg.switch_latency, bytes);
        self.nodes[from].tx_bytes.add(bytes);
        self.nodes[to].rx_bytes.add(bytes);
        let done = tx_done.max(rx_done);
        self.transfer_ns.record_dur(done - now);
        done
    }

    /// Bytes moved through a node's egress / ingress so far.
    pub fn node_traffic(&self, node: usize) -> (u64, u64) {
        (
            self.nodes[node].tx.bytes_moved(),
            self.nodes[node].rx.bytes_moved(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::prelude::*;

    #[test]
    fn idle_transfer_latency() {
        Runtime::simulate(0, |rt| {
            let c = Cluster::new(4, FabricConfig::default());
            let t = c.reserve_transfer(rt.now(), 0, 1, 64);
            // overhead + 2 nic latencies + switch + tiny serialization.
            let base = c.config().base_one_way().as_nanos();
            assert!(
                t.nanos() >= base && t.nanos() < base + 100,
                "{t:?} vs {base}"
            );
        });
    }

    #[test]
    fn loopback_skips_network() {
        Runtime::simulate(0, |rt| {
            let c = Cluster::new(2, FabricConfig::default());
            let t = c.reserve_transfer(rt.now(), 1, 1, 1 << 20);
            assert_eq!(t.nanos(), c.config().rdma_overhead.as_nanos());
        });
    }

    #[test]
    fn ingress_is_the_shared_bottleneck() {
        // Many senders to one receiver: aggregate limited by receiver NIC.
        Runtime::simulate(0, |rt| {
            let c = Cluster::new(5, FabricConfig::default());
            let bytes = 64u64 << 20; // 64 MB from each of 4 senders
            let mut last = Time::ZERO;
            for s in 1..5 {
                last = last.max(c.reserve_transfer(rt.now(), s, 0, bytes));
            }
            let agg_bw = (4 * bytes) as f64 / last.as_secs_f64();
            let nic = c.config().nic_bytes_per_sec;
            assert!(
                agg_bw <= nic * 1.01 && agg_bw > nic * 0.9,
                "aggregate {agg_bw} vs nic {nic}"
            );
        });
    }

    #[test]
    fn disjoint_pairs_dont_contend() {
        Runtime::simulate(0, |rt| {
            let c = Cluster::new(4, FabricConfig::default());
            let bytes = 16u64 << 20;
            let a = c.reserve_transfer(rt.now(), 0, 1, bytes);
            let b = c.reserve_transfer(rt.now(), 2, 3, bytes);
            // Same finish time: no shared resource between the two pairs.
            assert_eq!(a, b);
        });
    }

    #[test]
    fn traffic_accounting() {
        Runtime::simulate(0, |rt| {
            let c = Cluster::new(2, FabricConfig::default());
            c.reserve_transfer(rt.now(), 0, 1, 1000);
            let (tx0, rx0) = c.node_traffic(0);
            let (tx1, rx1) = c.node_traffic(1);
            assert_eq!((tx0, rx0), (1000, 0));
            assert_eq!((tx1, rx1), (0, 1000));
        });
    }
}
