//! User-level NVMe over Fabrics: SPDK-style targets and remote controllers.
//!
//! An [`NvmeOfTarget`] exports a local NVMe device to the fabric (paper
//! §II-A: "An NVMe-oF Target allows data on an NVMe SSD device to be
//! directly accessible to all connected remote clients through RDMA").
//! A client [`connect`]s to obtain a [`RemoteTarget`] which implements
//! [`blocksim::NvmeTarget`], so the *same* [`blocksim::IoQPair`] code drives
//! local and remote devices — precisely the property DLFS exploits.
//!
//! A remote read is modelled as the real protocol's stages, each reserving
//! the corresponding FIFO resource:
//!
//! 1. command capsule, client → target (64 B over the fabric);
//! 2. target-side SPDK processing (shared per-target poll-thread budget);
//! 3. the backing device's own service (overhead + media + data path);
//! 4. RDMA write of the payload, target → client (zero-copy into the
//!    client's registered DMA buffer).

use std::sync::Arc;

use blocksim::{NvmeDevice, NvmeTarget, BLOCK_SIZE};
use simkit::resource::Servers;
use simkit::time::{Dur, Time};

use crate::topology::Cluster;

/// NVMe-oF command capsule size on the wire.
pub const CAPSULE_BYTES: u64 = 64;

/// Completion response size on the wire.
pub const RESPONSE_BYTES: u64 = 16;

/// Target-side configuration.
#[derive(Clone, Debug)]
pub struct TargetConfig {
    /// CPU cost the target's SPDK poll thread spends per command.
    pub per_cmd_processing: Dur,
    /// Parallelism of the target's processing (poll threads).
    pub threads: usize,
    /// Compute threads of the target's offload engine (frame decode /
    /// augmentation for storage-side offload batches). Idle unless a
    /// client issues `reserve_offload`.
    pub offload_threads: usize,
}

impl Default for TargetConfig {
    fn default() -> Self {
        TargetConfig {
            per_cmd_processing: Dur::micros(2),
            threads: 1,
            offload_threads: 2,
        }
    }
}

/// An SPDK NVMe-oF target exporting one device from one node.
pub struct NvmeOfTarget {
    device: Arc<NvmeDevice>,
    node: usize,
    processing: Servers,
    offload: crate::offload::OffloadScheduler,
    cfg: TargetConfig,
}

impl std::fmt::Debug for NvmeOfTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeOfTarget")
            .field("node", &self.node)
            .field("device", &self.device.config().name)
            .finish()
    }
}

impl NvmeOfTarget {
    pub fn new(node: usize, device: Arc<NvmeDevice>, cfg: TargetConfig) -> Arc<NvmeOfTarget> {
        Arc::new(NvmeOfTarget {
            device,
            node,
            processing: Servers::new(cfg.threads.max(1)),
            offload: crate::offload::OffloadScheduler::new(cfg.offload_threads),
            cfg,
        })
    }

    pub fn node(&self) -> usize {
        self.node
    }

    pub fn device(&self) -> &Arc<NvmeDevice> {
        &self.device
    }
}

/// Client-side handle to a remote NVMe-oF controller; implements
/// [`NvmeTarget`] so ordinary qpairs can drive it.
pub struct RemoteTarget {
    cluster: Arc<Cluster>,
    target: Arc<NvmeOfTarget>,
    client_node: usize,
}

impl std::fmt::Debug for RemoteTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteTarget")
            .field("client_node", &self.client_node)
            .field("target_node", &self.target.node)
            .finish()
    }
}

/// Connect `client_node` to a target over the cluster fabric.
pub fn connect(
    cluster: Arc<Cluster>,
    client_node: usize,
    target: Arc<NvmeOfTarget>,
) -> Arc<RemoteTarget> {
    assert!(client_node < cluster.len(), "bad client node");
    assert!(target.node < cluster.len(), "target node outside cluster");
    Arc::new(RemoteTarget {
        cluster,
        target,
        client_node,
    })
}

impl NvmeTarget for RemoteTarget {
    fn reserve_read(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        let data_bytes = nblocks as u64 * BLOCK_SIZE;
        // 1. Command capsule to the target.
        let t1 =
            self.cluster
                .reserve_transfer(now, self.client_node, self.target.node, CAPSULE_BYTES);
        // 2. Target-side SPDK processing.
        let t2 = self
            .target
            .processing
            .reserve(t1, self.target.cfg.per_cmd_processing);
        // 3. Backing device service.
        let t3 = self.target.device.reserve_read(t2, slba, nblocks);
        // 4. RDMA write of payload + completion back to the client.
        self.cluster.reserve_transfer(
            t3,
            self.target.node,
            self.client_node,
            data_bytes + RESPONSE_BYTES,
        )
    }

    fn reserve_write(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        let data_bytes = nblocks as u64 * BLOCK_SIZE;
        // Payload travels with the command (client → target).
        let t1 = self.cluster.reserve_transfer(
            now,
            self.client_node,
            self.target.node,
            CAPSULE_BYTES + data_bytes,
        );
        let t2 = self
            .target
            .processing
            .reserve(t1, self.target.cfg.per_cmd_processing);
        let t3 = self.target.device.reserve_write(t2, slba, nblocks);
        // Completion response only.
        self.cluster
            .reserve_transfer(t3, self.target.node, self.client_node, RESPONSE_BYTES)
    }

    fn dma_read(&self, slba: u64, dst: &mut [u8]) {
        // Zero-copy RDMA lands device data directly in the client's
        // registered buffer; functionally this is a read from the remote
        // device's backing store.
        self.target.device.dma_read(slba, dst);
    }

    fn dma_write(&self, slba: u64, src: &[u8]) {
        self.target.device.dma_write(slba, src);
    }

    fn max_queue_depth(&self) -> usize {
        self.target.device.max_queue_depth()
    }

    fn blocks(&self) -> u64 {
        self.target.device.blocks()
    }

    fn describe(&self) -> String {
        format!(
            "nvme-of node{}→node{} ({})",
            self.client_node,
            self.target.node,
            self.target.device.config().name
        )
    }

    fn fault_decide(&self, now: Time, is_write: bool) -> blocksim::FaultOutcome {
        // Device-level fate first (media errors, latency spikes), then the
        // fabric's verdict on the client ↔ target path layered on top. A
        // dropped command surfaces as a transport error after the fabric's
        // I/O timeout — the initiator's qpair sees it complete then, with
        // no data transferred.
        let dev = self.target.device.fault_decide(now, is_write);
        self.layer_fabric(now, dev)
    }

    fn fault_decide_range(
        &self,
        now: Time,
        is_write: bool,
        slba: u64,
        nblocks: u32,
    ) -> blocksim::FaultOutcome {
        let dev = self
            .target
            .device
            .fault_decide_range(now, is_write, slba, nblocks);
        self.layer_fabric(now, dev)
    }

    fn probe_extent(&self, slba: u64, nblocks: u32) -> bool {
        self.target.device.probe_extent(slba, nblocks)
    }

    fn reserve_offload(
        &self,
        now: Time,
        extents: &[blocksim::OffloadExtent],
        response_bytes: u64,
    ) -> Time {
        // One request capsule describes the whole batch.
        let req = crate::offload::OffloadRequestWire {
            extents: extents.len(),
        };
        // Fabric faults delay the capsule; a dropped capsule is detected
        // by the initiator's command timeout and retransmitted once the
        // loss surfaces (a single-retransmit model — the payload path
        // below shares the NIC reservations of every other transfer, so
        // bandwidth contention is already charged there).
        let t0 = match self
            .cluster
            .fault_decide(now, self.client_node, self.target.node)
        {
            crate::fault::FabricFault::Healthy => now,
            crate::fault::FabricFault::Delay(extra) => now + extra,
            crate::fault::FabricFault::Dropped { detect_after } => now + detect_after,
        };
        use crate::rpc::WireSize;
        let t1 =
            self.cluster
                .reserve_transfer(t0, self.client_node, self.target.node, req.wire_bytes());
        // 2. SPDK poll thread picks the capsule up.
        let t2 = self
            .target
            .processing
            .reserve(t1, self.target.cfg.per_cmd_processing);
        // 3. Extent reads through the device, decode/augment on the
        //    target's offload compute pool.
        let t3 = self
            .target
            .offload
            .reserve_batch(t2, &self.target.device, extents);
        // 4. ONE dense response: the assembled sample bytes.
        self.cluster.reserve_transfer(
            t3,
            self.target.node,
            self.client_node,
            response_bytes + RESPONSE_BYTES,
        )
    }
}

impl RemoteTarget {
    fn layer_fabric(&self, now: Time, dev: blocksim::FaultOutcome) -> blocksim::FaultOutcome {
        match self
            .cluster
            .fault_decide(now, self.client_node, self.target.node)
        {
            crate::fault::FabricFault::Healthy => dev,
            crate::fault::FabricFault::Delay(extra) => blocksim::FaultOutcome {
                status: dev.status,
                extra_latency: dev.extra_latency + extra,
            },
            crate::fault::FabricFault::Dropped { detect_after } => blocksim::FaultOutcome {
                status: blocksim::CmdStatus::TransportError,
                extra_latency: detect_after,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricConfig;
    use blocksim::{DeviceConfig, DmaBuf, IoQPair};
    use simkit::prelude::*;

    fn cluster(n: usize) -> Arc<Cluster> {
        Arc::new(Cluster::new(n, FabricConfig::default()))
    }

    fn target_on(node: usize) -> Arc<NvmeOfTarget> {
        let dev = NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10)));
        NvmeOfTarget::new(node, dev, TargetConfig::default())
    }

    #[test]
    fn remote_read_adds_fabric_latency() {
        Runtime::simulate(0, |rt| {
            let c = cluster(2);
            let tgt = target_on(1);
            let local_done = tgt.device().reserve_read(rt.now(), 0, 8);
            let remote = connect(c, 0, tgt);
            let remote_done = remote.reserve_read(rt.now(), 0, 8);
            let added = remote_done - local_done;
            // The paper quotes ~10us added for NVMe-oF; our model should be
            // in the single-digit-microsecond band.
            assert!(
                (3_000..15_000).contains(&added.as_nanos()),
                "added {added:?}"
            );
        });
    }

    #[test]
    fn end_to_end_remote_roundtrip_via_qpair() {
        Runtime::simulate(0, |rt| {
            let c = cluster(3);
            let tgt = target_on(2);
            let remote = connect(c, 0, tgt.clone());
            let mut qp = IoQPair::new(remote, 16);

            let wbuf = DmaBuf::standalone(2048);
            wbuf.with_mut(|d| {
                d.iter_mut()
                    .enumerate()
                    .for_each(|(i, b)| *b = (i * 7 % 256) as u8)
            });
            qp.submit_write(rt, 1, 100, 4, wbuf, 0).unwrap();
            qp.drain(rt, Dur::nanos(100));

            let rbuf = DmaBuf::standalone(2048);
            qp.submit_read(rt, 2, 100, 4, rbuf.clone(), 0).unwrap();
            qp.drain(rt, Dur::nanos(100));
            rbuf.with(|d| {
                for (i, &b) in d.iter().enumerate() {
                    assert_eq!(b, (i * 7 % 256) as u8);
                }
            });
        });
    }

    #[test]
    fn two_clients_share_one_target() {
        Runtime::simulate(0, |rt| {
            let c = cluster(3);
            let tgt = target_on(2);
            let r0 = connect(c.clone(), 0, tgt.clone());
            let r1 = connect(c.clone(), 1, tgt.clone());
            // Saturating reads from both clients share the target's egress
            // NIC: aggregate bandwidth must not exceed one NIC.
            let nblk = 256u32; // 128 KB
            let mut last = Time::ZERO;
            let n = 200u64;
            for i in 0..n {
                let t = if i % 2 == 0 {
                    r0.reserve_read(rt.now(), (i * nblk as u64) % 1000, nblk)
                } else {
                    r1.reserve_read(rt.now(), (i * nblk as u64) % 1000, nblk)
                };
                last = last.max(t);
            }
            let bytes = n * nblk as u64 * BLOCK_SIZE;
            let bw = bytes as f64 / last.as_secs_f64();
            // Device (2.2 GB/s) is the binding constraint, not the NIC.
            assert!((1.8e9..2.3e9).contains(&bw), "bw {bw}");
        });
    }

    #[test]
    fn single_client_many_devices_hits_nic_wall() {
        // The Fig. 11 mechanism: one client, 4 remote devices. Aggregate
        // throughput ≈ client ingress NIC (6.8 GB/s), not 4 × 2.2 GB/s.
        Runtime::simulate(0, |rt| {
            let c = cluster(5);
            let remotes: Vec<_> = (1..5)
                .map(|n| connect(c.clone(), 0, target_on(n)))
                .collect();
            let nblk = 256u32;
            let n = 400u64;
            let mut last = Time::ZERO;
            for i in 0..n {
                let r = &remotes[(i % 4) as usize];
                last = last.max(r.reserve_read(rt.now(), (i * nblk as u64) % 1000, nblk));
            }
            let bw = (n * nblk as u64 * BLOCK_SIZE) as f64 / last.as_secs_f64();
            assert!(
                (6.0e9..6.9e9).contains(&bw),
                "bw {bw} should be NIC-bound (~6.8e9)"
            );
        });
    }
}
