//! A small RDMA send/recv RPC layer over the cluster fabric.
//!
//! Used by the Octopus-like baseline (`octofs`) for its distributed
//! metadata lookups, and by DLFS's `dlfs_mount` collective. The server is
//! an active simulation task; each call pays the fabric cost both ways plus
//! whatever CPU the handler charges via `Runtime::work`.

use std::sync::Arc;

use simkit::chan::{Receiver, Sender};
use simkit::retry::RetryPolicy;
use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Histo};
use simkit::time::Time;

use crate::fault::FabricFault;
use crate::topology::Cluster;

/// RPC failure surfaced to callers of [`RpcClient::try_call`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// Every attempt timed out (dropped capsule or response, crashed or
    /// unreachable server).
    Timeout { server_node: usize, attempts: u32 },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout {
                server_node,
                attempts,
            } => write!(
                f,
                "rpc to node {server_node} timed out after {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for RpcError {}

/// Wire-size estimator for a message type.
pub trait WireSize {
    fn wire_bytes(&self) -> u64;
}

impl WireSize for u64 {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl<T> WireSize for Vec<T> {
    fn wire_bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64 + 16
    }
}

struct Envelope<Req, Resp> {
    req: Req,
    reply_to: Sender<Resp>,
    client_node: usize,
}

/// Client handle to a remote RPC endpoint.
pub struct RpcClient<Req, Resp> {
    cluster: Arc<Cluster>,
    server_node: usize,
    tx: Sender<Envelope<Req, Resp>>,
    retry: RetryPolicy,
    calls: Counter,
    retries: Counter,
    timeouts: Counter,
    latency_ns: Histo,
}

impl<Req, Resp> Clone for RpcClient<Req, Resp> {
    fn clone(&self) -> Self {
        RpcClient {
            cluster: self.cluster.clone(),
            server_node: self.server_node,
            tx: self.tx.clone(),
            retry: self.retry,
            calls: self.calls.clone(),
            retries: self.retries.clone(),
            timeouts: self.timeouts.clone(),
            latency_ns: self.latency_ns.clone(),
        }
    }
}

impl<Req, Resp> std::fmt::Debug for RpcClient<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcClient")
            .field("server_node", &self.server_node)
            .finish()
    }
}

impl<Req: Send + WireSize + 'static, Resp: Send + WireSize + 'static> RpcClient<Req, Resp> {
    /// Replace the retry policy used by [`RpcClient::try_call`].
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Issue a synchronous RPC from `from_node`. The calling task sleeps for
    /// the request's network time, the server's queueing + handler time, and
    /// the response's network time.
    ///
    /// This path is fault-oblivious (control-plane traffic during setup
    /// phases); data-plane callers that must survive drops and crashed
    /// servers use [`RpcClient::try_call`].
    pub fn call(&self, rt: &Runtime, from_node: usize, req: Req) -> Resp {
        let started = rt.now();
        let resp = self.exchange(rt, from_node, req);
        self.calls.inc();
        self.latency_ns.record_dur(rt.now() - started);
        resp
    }

    /// One fault-free request/response exchange.
    fn exchange(&self, rt: &Runtime, from_node: usize, req: Req) -> Resp {
        // Request crosses the fabric.
        let req_bytes = req.wire_bytes();
        let arrive =
            self.cluster
                .reserve_transfer(rt.now(), from_node, self.server_node, req_bytes);
        let wait = arrive - rt.now();
        if !wait.is_zero() {
            rt.sleep(wait);
        }
        // Deliver to the server task; wait for the handler's reply.
        let (reply_tx, reply_rx) = rt_channel(rt);
        if self
            .tx
            .send(Envelope {
                req,
                reply_to: reply_tx,
                client_node: from_node,
            })
            .is_err()
        {
            panic!("rpc server gone");
        }
        let resp = reply_rx.recv().expect("rpc server dropped reply channel");
        // Response crosses the fabric back.
        let resp_bytes = resp.wire_bytes();
        let back: Time =
            self.cluster
                .reserve_transfer(rt.now(), self.server_node, from_node, resp_bytes);
        let wait = back - rt.now();
        if !wait.is_zero() {
            rt.sleep(wait);
        }
        resp
    }
}

impl<Req, Resp> RpcClient<Req, Resp>
where
    Req: Send + WireSize + Clone + 'static,
    Resp: Send + WireSize + 'static,
{
    /// Fault-aware RPC: consults the cluster's fault injector on both
    /// directions, waits out the fabric I/O timeout on a dropped message,
    /// and retries under the client's [`RetryPolicy`] with deterministic
    /// backoff. Errs with [`RpcError::Timeout`] once the attempt budget is
    /// spent.
    ///
    /// A response-direction drop re-runs the handler on retry, so handlers
    /// must be idempotent (metadata lookups are).
    pub fn try_call(&self, rt: &Runtime, from_node: usize, req: Req) -> Result<Resp, RpcError> {
        let started = rt.now();
        let mut failed = 0u32;
        loop {
            let fate = match self
                .cluster
                .fault_decide(rt.now(), from_node, self.server_node)
            {
                FabricFault::Dropped { detect_after } => Err(detect_after),
                FabricFault::Delay(extra) => {
                    if !extra.is_zero() {
                        rt.sleep(extra);
                    }
                    Ok(())
                }
                FabricFault::Healthy => Ok(()),
            };
            let fate = match fate {
                Err(timeout) => Err(timeout),
                Ok(()) => {
                    let resp = self.exchange(rt, from_node, req.clone());
                    // The response capsule can be lost independently.
                    match self
                        .cluster
                        .fault_decide(rt.now(), self.server_node, from_node)
                    {
                        FabricFault::Dropped { detect_after } => Err(detect_after),
                        FabricFault::Delay(extra) => {
                            if !extra.is_zero() {
                                rt.sleep(extra);
                            }
                            Ok(resp)
                        }
                        FabricFault::Healthy => Ok(resp),
                    }
                }
            };
            match fate {
                Ok(resp) => {
                    self.calls.inc();
                    self.latency_ns.record_dur(rt.now() - started);
                    return Ok(resp);
                }
                Err(timeout) => {
                    self.timeouts.inc();
                    if !timeout.is_zero() {
                        rt.sleep(timeout);
                    }
                    failed += 1;
                    match self.retry.next_delay(failed) {
                        Some(backoff) => {
                            self.retries.inc();
                            if !backoff.is_zero() {
                                rt.sleep(backoff);
                            }
                        }
                        None => {
                            return Err(RpcError::Timeout {
                                server_node: self.server_node,
                                attempts: failed,
                            })
                        }
                    }
                }
            }
        }
    }
}

fn rt_channel<T: Send>(rt: &Runtime) -> (Sender<T>, Receiver<T>) {
    rt.channel(None)
}

/// Spawn an RPC server task on `server_node`. `handler` runs once per
/// request, in arrival order, and should charge its CPU cost with
/// `rt.work(...)`. The server exits when every client handle is dropped.
pub fn serve<Req, Resp>(
    rt: &Runtime,
    cluster: Arc<Cluster>,
    server_node: usize,
    name: &str,
    mut handler: impl FnMut(&Runtime, usize, Req) -> Resp + Send + 'static,
) -> RpcClient<Req, Resp>
where
    Req: Send + WireSize + 'static,
    Resp: Send + WireSize + 'static,
{
    let (tx, rx) = rt.channel::<Envelope<Req, Resp>>(None);
    rt.spawn(name, move |rt| {
        while let Ok(env) = rx.recv() {
            let resp = handler(rt, env.client_node, env.req);
            // Client may have vanished during shutdown; ignore.
            let _ = env.reply_to.send(resp);
        }
    });
    let scope = cluster.registry().scoped(&format!("fabric.rpc.{name}"));
    RpcClient {
        calls: scope.counter("calls"),
        retries: scope.counter("retries"),
        timeouts: scope.counter("timeouts"),
        latency_ns: scope.histogram("latency_ns"),
        retry: RetryPolicy::default(),
        cluster,
        server_node,
        tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FabricConfig;

    use simkit::time::Dur;

    #[test]
    fn rpc_roundtrip_charges_network_and_cpu() {
        Runtime::simulate(0, |rt| {
            let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
            let client = serve::<u64, u64>(rt, cluster.clone(), 1, "echo", |rt, _from, x| {
                rt.work(Dur::micros(3));
                x * 2
            });
            let t0 = rt.now();
            let resp = client.call(rt, 0, 21);
            assert_eq!(resp, 42);
            let elapsed = rt.now() - t0;
            // Two one-way traversals (~2.6us each) + 3us handler.
            let min = cluster.config().base_one_way() * 2 + Dur::micros(3);
            assert!(elapsed >= min, "{elapsed:?} < {min:?}");
            assert!(elapsed < min + Dur::micros(5), "{elapsed:?}");
        });
    }

    #[test]
    fn server_serializes_requests() {
        Runtime::simulate(0, |rt| {
            let cluster = Arc::new(Cluster::new(3, FabricConfig::default()));
            let client = serve::<u64, u64>(rt, cluster, 2, "slow", |rt, _from, x| {
                rt.work(Dur::micros(100));
                x
            });
            let mut handles = Vec::new();
            for i in 0..4u64 {
                let c = client.clone();
                handles.push(rt.spawn_with(&format!("c{i}"), move |rt| {
                    c.call(rt, (i % 2) as usize, i);
                    rt.now().nanos()
                }));
            }
            let mut finish: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
            finish.sort_unstable();
            // Four 100us handler executions must serialize: last finisher
            // no earlier than 400us.
            assert!(finish[3] >= 400_000, "{finish:?}");
        });
    }

    #[test]
    fn handler_sees_client_node() {
        Runtime::simulate(0, |rt| {
            let cluster = Arc::new(Cluster::new(4, FabricConfig::default()));
            let client = serve::<u64, u64>(rt, cluster, 0, "who", |_rt, from, _x| from as u64);
            assert_eq!(client.call(rt, 3, 0), 3);
            assert_eq!(client.call(rt, 1, 0), 1);
        });
    }
}
