//! Cluster membership: escalating transient target faults to permanent
//! death under an explicit, deterministic policy.
//!
//! [`TargetHealth`](crate::TargetHealth) answers "should I route to this
//! target *right now*" — its circuit re-closes the moment a probe
//! succeeds, which is the right behavior for blips but means a target
//! that died for good is re-probed forever and every chunk it hosted
//! stays at reduced redundancy until someone notices. [`Membership`]
//! layers a cluster-wide view on top: a target whose circuit has been
//! continuously open longer than [`MembershipPolicy::dead_after`] is
//! declared **Dead**, a sticky state that only an explicit
//! [`rejoin`](Membership::rejoin) (after the replacement target has been
//! resynced and verified) clears. Every state transition bumps a **view
//! epoch**, so concurrent clients sharing one `Membership` agree on the
//! view and can tag decisions ("planned under epoch 7") detectably.
//!
//! All transitions are pure functions of the health-event timeline and
//! the observing call's virtual `now`, so a same-seed simulation replays
//! to an identical sequence of views.

use simkit::plock::Mutex;
use simkit::telemetry::{Counter, Gauge, Registry};
use simkit::time::{Dur, Time};

/// Where a target stands in the cluster view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Serving normally.
    Alive,
    /// Circuit currently open; may still come back on its own.
    Suspect,
    /// Declared permanently failed. Sticky: never probed, never routed
    /// to, writes refused. Cleared only by [`Membership::rejoin`].
    Dead,
}

impl NodeState {
    fn gauge_value(self) -> i64 {
        match self {
            NodeState::Alive => 0,
            NodeState::Suspect => 1,
            NodeState::Dead => 2,
        }
    }
}

/// When to escalate Suspect → Dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MembershipPolicy {
    /// A target whose circuit has been continuously open for at least
    /// this long is declared Dead.
    pub dead_after: Dur,
}

struct MembershipTel {
    view_epoch: Gauge,
    /// Per-node state gauge: 0 = Alive, 1 = Suspect, 2 = Dead.
    node_state: Vec<Gauge>,
    deaths: Counter,
    rejoins: Counter,
}

/// Shared cluster view over a fixed set of storage targets.
pub struct Membership {
    policy: MembershipPolicy,
    states: Vec<Mutex<NodeState>>,
    /// Bumped on every state transition anywhere in the cluster.
    epoch: Mutex<u64>,
    tel: Mutex<Option<MembershipTel>>,
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("targets", &self.states.len())
            .field("policy", &self.policy)
            .field("epoch", &*self.epoch.lock())
            .finish()
    }
}

impl Membership {
    /// Track `targets` targets, all initially Alive, at view epoch 0.
    pub fn new(targets: usize, policy: MembershipPolicy) -> Membership {
        Membership {
            policy,
            states: (0..targets).map(|_| Mutex::new(NodeState::Alive)).collect(),
            epoch: Mutex::new(0),
            tel: Mutex::new(None),
        }
    }

    /// Register `view_epoch`, per-node `nodeN.state` gauges, and the
    /// `deaths` / `rejoins` counters in `reg` (e.g. a registry scoped to
    /// `dlfs.membership`).
    pub fn attach_telemetry(&self, reg: &Registry) {
        let node_state: Vec<Gauge> = (0..self.states.len())
            .map(|n| reg.gauge(&format!("node{n}.state")))
            .collect();
        for (n, g) in node_state.iter().enumerate() {
            g.set(self.states[n].lock().gauge_value());
        }
        let view_epoch = reg.gauge("view_epoch");
        view_epoch.set(*self.epoch.lock() as i64);
        *self.tel.lock() = Some(MembershipTel {
            view_epoch,
            node_state,
            deaths: reg.counter("deaths"),
            rejoins: reg.counter("rejoins"),
        });
    }

    pub fn targets(&self) -> usize {
        self.states.len()
    }

    /// The current view epoch. Bumped on every state transition.
    pub fn view_epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    pub fn state(&self, target: usize) -> NodeState {
        *self.states[target].lock()
    }

    pub fn is_dead(&self, target: usize) -> bool {
        self.state(target) == NodeState::Dead
    }

    /// The first Dead target, if any (lowest index — deterministic).
    pub fn first_dead(&self) -> Option<usize> {
        (0..self.states.len()).find(|&n| self.is_dead(n))
    }

    /// The target's circuit is open and has been since `since`; decide
    /// whether that sustained outage crosses the death policy at `now`.
    /// Returns the target's state after the observation.
    pub fn observe_open(&self, target: usize, since: Time, now: Time) -> NodeState {
        let mut st = self.states[target].lock();
        match *st {
            NodeState::Dead => NodeState::Dead,
            prev => {
                let next = if now - since >= self.policy.dead_after {
                    NodeState::Dead
                } else {
                    NodeState::Suspect
                };
                if next != prev {
                    *st = next;
                    self.bump(target, next, next == NodeState::Dead, false);
                }
                next
            }
        }
    }

    /// The target served a request successfully. Clears Suspect back to
    /// Alive. Dead stays Dead — a permanently-failed target that answers
    /// a stray probe is not trusted until it has been resynced and
    /// explicitly [`rejoin`](Self::rejoin)ed.
    pub fn observe_alive(&self, target: usize) -> NodeState {
        let mut st = self.states[target].lock();
        match *st {
            NodeState::Suspect => {
                *st = NodeState::Alive;
                self.bump(target, NodeState::Alive, false, false);
                NodeState::Alive
            }
            other => other,
        }
    }

    /// Re-admit a Dead target after resync + verification. Bumps the view
    /// epoch; no-op if the target was not Dead.
    pub fn rejoin(&self, target: usize) {
        let mut st = self.states[target].lock();
        if *st == NodeState::Dead {
            *st = NodeState::Alive;
            self.bump(target, NodeState::Alive, false, true);
        }
    }

    fn bump(&self, target: usize, next: NodeState, death: bool, rejoin: bool) {
        let mut ep = self.epoch.lock();
        *ep += 1;
        if let Some(t) = self.tel.lock().as_ref() {
            t.view_epoch.set(*ep as i64);
            t.node_state[target].set(next.gauge_value());
            if death {
                t.deaths.inc();
            }
            if rejoin {
                t.rejoins.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(us: u64) -> MembershipPolicy {
        MembershipPolicy {
            dead_after: Dur::micros(us),
        }
    }

    #[test]
    fn escalates_suspect_to_dead_with_epoch_bumps() {
        let m = Membership::new(3, policy(100));
        let t0 = Time::ZERO + Dur::micros(7);
        assert_eq!(m.view_epoch(), 0);
        assert_eq!(
            m.observe_open(1, t0, t0 + Dur::micros(10)),
            NodeState::Suspect
        );
        assert_eq!(m.view_epoch(), 1);
        // Still suspect: repeated observations below the policy don't churn
        // the epoch.
        assert_eq!(
            m.observe_open(1, t0, t0 + Dur::micros(99)),
            NodeState::Suspect
        );
        assert_eq!(m.view_epoch(), 1);
        assert_eq!(
            m.observe_open(1, t0, t0 + Dur::micros(100)),
            NodeState::Dead
        );
        assert_eq!(m.view_epoch(), 2);
        assert!(m.is_dead(1));
        assert_eq!(m.first_dead(), Some(1));
        // Other nodes unaffected.
        assert_eq!(m.state(0), NodeState::Alive);
        assert_eq!(m.state(2), NodeState::Alive);
    }

    #[test]
    fn dead_is_sticky_until_rejoin() {
        let m = Membership::new(2, policy(50));
        let t0 = Time::ZERO;
        m.observe_open(0, t0, t0 + Dur::micros(50));
        assert!(m.is_dead(0));
        // A stray successful probe does not resurrect a Dead node.
        assert_eq!(m.observe_alive(0), NodeState::Dead);
        assert!(m.is_dead(0));
        // Nor does another open observation change anything.
        let e = m.view_epoch();
        assert_eq!(
            m.observe_open(0, t0, t0 + Dur::micros(200)),
            NodeState::Dead
        );
        assert_eq!(m.view_epoch(), e);
        m.rejoin(0);
        assert_eq!(m.state(0), NodeState::Alive);
        assert_eq!(m.view_epoch(), e + 1);
        // Rejoining an already-Alive node is a no-op.
        m.rejoin(0);
        assert_eq!(m.view_epoch(), e + 1);
    }

    #[test]
    fn suspect_recovers_to_alive() {
        let m = Membership::new(1, policy(100));
        let t0 = Time::ZERO;
        m.observe_open(0, t0, t0 + Dur::micros(10));
        assert_eq!(m.state(0), NodeState::Suspect);
        assert_eq!(m.observe_alive(0), NodeState::Alive);
        assert_eq!(m.view_epoch(), 2);
        // Alive → alive observation is epoch-silent.
        assert_eq!(m.observe_alive(0), NodeState::Alive);
        assert_eq!(m.view_epoch(), 2);
    }

    #[test]
    fn telemetry_tracks_view() {
        let reg = Registry::new();
        let m = Membership::new(2, policy(10));
        m.attach_telemetry(&reg.scoped("membership"));
        let t0 = Time::ZERO;
        m.observe_open(1, t0, t0 + Dur::micros(10));
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("membership.view_epoch"), 1);
        assert_eq!(snap.gauge("membership.node0.state"), 0);
        assert_eq!(snap.gauge("membership.node1.state"), 2);
        assert_eq!(snap.counter("membership.deaths"), 1);
        m.rejoin(1);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("membership.view_epoch"), 2);
        assert_eq!(snap.gauge("membership.node1.state"), 0);
        assert_eq!(snap.counter("membership.rejoins"), 1);
    }
}
