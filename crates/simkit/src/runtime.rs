//! The `Runtime` facade: one handle for spawning tasks, telling time,
//! sleeping, and creating channels — backed either by the deterministic
//! virtual-time scheduler ([`Runtime::simulate`]) or by real OS threads and
//! the wall clock ([`Runtime::real`]).
//!
//! Components throughout the workspace are written against this handle only,
//! so the same DLFS/Ext4/Octopus code runs both inside exact, reproducible
//! simulations (for the paper's figures) and live on real threads (for the
//! interactive examples).

use std::sync::Arc;
use std::time::Instant;

use crate::plock::Mutex;

use crate::chan::{real_channel, sim_channel, Receiver, Sender};
use crate::rng::SplitMix64;
use crate::sched::{Pid, SimCore};
use crate::time::{Dur, Time};

#[derive(Clone)]
enum RtImpl {
    Sim(Arc<SimCore>),
    Real(Arc<RealCore>),
}

struct RealCore {
    epoch: Instant,
    seed: u64,
}

/// A handle to the execution environment. Cheap to clone; pass it to every
/// spawned task.
#[derive(Clone)]
pub struct Runtime(RtImpl);

impl Runtime {
    /// Run `f` inside a fresh deterministic simulation and return its result
    /// together with the final virtual time.
    ///
    /// The calling thread becomes the *root* participant. When `f` returns,
    /// all remaining participants (e.g. device engines in endless poll
    /// loops) are shut down and joined. Panics inside any participant, and
    /// deadlocks, abort the simulation with the original message.
    pub fn simulate<T>(seed: u64, f: impl FnOnce(&Runtime) -> T) -> (T, Time) {
        let core = SimCore::new(seed);
        core.enter_root();
        // Ensure threads are joined even if `f` panics.
        struct Guard(Arc<SimCore>, Option<Time>);
        impl Drop for Guard {
            fn drop(&mut self) {
                if self.1.is_none() {
                    self.1 = Some(self.0.exit_root());
                }
            }
        }
        let mut guard = Guard(core.clone(), None);
        let rt = Runtime(RtImpl::Sim(core));
        let out = f(&rt);
        let end = guard.0.exit_root();
        guard.1 = Some(end);
        (out, end)
    }

    /// A runtime backed by real OS threads and the wall clock. Virtual time
    /// maps to wall time since creation.
    pub fn real(seed: u64) -> Runtime {
        Runtime(RtImpl::Real(Arc::new(RealCore {
            epoch: Instant::now(),
            seed,
        })))
    }

    /// Whether this runtime is a deterministic simulation.
    pub fn is_sim(&self) -> bool {
        matches!(self.0, RtImpl::Sim(_))
    }

    /// Current (virtual or wall) time.
    pub fn now(&self) -> Time {
        match &self.0 {
            RtImpl::Sim(c) => c.now(),
            RtImpl::Real(c) => Time(c.epoch.elapsed().as_nanos() as u64),
        }
    }

    /// Suspend the calling task for `d` (idle time; models waiting).
    pub fn sleep(&self, d: Dur) {
        match &self.0 {
            RtImpl::Sim(c) => c.sleep(d),
            RtImpl::Real(c) => c.sleep_real(d),
        }
    }

    /// Consume `d` of CPU (busy time; models computation / memcpy / polling).
    pub fn work(&self, d: Dur) {
        match &self.0 {
            RtImpl::Sim(c) => c.work(d),
            RtImpl::Real(c) => c.spin(d),
        }
    }

    /// Sleep until the absolute instant `t` (idle time). A no-op when `t`
    /// is not in the future. The event-driven idiom for parking until a
    /// known completion instant.
    pub fn sleep_until(&self, t: Time) {
        let now = self.now();
        if t > now {
            self.sleep(t - now);
        }
    }

    /// Spin until the absolute instant `t` (busy time). A no-op when `t`
    /// is not in the future. Models a polling loop that would have kept
    /// the CPU hot until then anyway.
    pub fn work_until(&self, t: Time) {
        let now = self.now();
        if t > now {
            self.work(t - now);
        }
    }

    /// Yield to other runnable tasks without advancing time.
    pub fn yield_now(&self) {
        match &self.0 {
            RtImpl::Sim(c) => c.sleep(Dur::ZERO),
            RtImpl::Real(_) => std::thread::yield_now(),
        }
    }

    /// Busy CPU time consumed so far by the calling task (sim mode only;
    /// real mode approximates with zero).
    pub fn my_busy(&self) -> Dur {
        match &self.0 {
            RtImpl::Sim(c) => c.my_busy(),
            RtImpl::Real(_) => Dur::ZERO,
        }
    }

    /// Total busy CPU time across all tasks (sim mode only).
    pub fn total_busy(&self) -> Dur {
        match &self.0 {
            RtImpl::Sim(c) => c.total_busy(),
            RtImpl::Real(_) => Dur::ZERO,
        }
    }

    /// Idle (parked) time spent so far by the calling task in `sleep`
    /// (sim mode only). The complement of [`Runtime::my_busy`]: an
    /// event-driven loop parks instead of spinning, and the difference
    /// shows up here.
    pub fn my_idle(&self) -> Dur {
        match &self.0 {
            RtImpl::Sim(c) => c.my_idle(),
            RtImpl::Real(_) => Dur::ZERO,
        }
    }

    /// Total parked idle time across all tasks (sim mode only).
    pub fn total_idle(&self) -> Dur {
        match &self.0 {
            RtImpl::Sim(c) => c.total_idle(),
            RtImpl::Real(_) => Dur::ZERO,
        }
    }

    /// The experiment seed this runtime was created with.
    pub fn seed(&self) -> u64 {
        match &self.0 {
            RtImpl::Sim(c) => c.seed,
            RtImpl::Real(c) => c.seed,
        }
    }

    /// Derive a deterministic RNG stream labelled `stream` from the runtime
    /// seed. Equal (seed, stream) pairs always yield equal sequences.
    pub fn rng(&self, stream: u64) -> SplitMix64 {
        SplitMix64::derive(self.seed(), stream)
    }

    /// Spawn a task. In simulation mode the task becomes a scheduler
    /// participant; in real mode it is a plain OS thread.
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Runtime) + Send + 'static) -> JoinHandle<()> {
        self.spawn_with(name, move |rt| {
            f(rt);
        })
    }

    /// Spawn a task that returns a value retrievable through its handle.
    pub fn spawn_with<T: Send + 'static>(
        &self,
        name: &str,
        f: impl FnOnce(&Runtime) -> T + Send + 'static,
    ) -> JoinHandle<T> {
        let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        match &self.0 {
            RtImpl::Sim(core) => {
                let rt = self.clone();
                let s2 = slot.clone();
                let pid = core.spawn_participant(
                    name,
                    Box::new(move || {
                        let v = f(&rt);
                        *s2.lock() = Some(v);
                    }),
                );
                JoinHandle {
                    inner: JoinImpl::Sim(core.clone(), pid),
                    slot,
                }
            }
            RtImpl::Real(_) => {
                let rt = self.clone();
                let s2 = slot.clone();
                let h = std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(move || {
                        let v = f(&rt);
                        *s2.lock() = Some(v);
                    })
                    .expect("failed to spawn thread");
                JoinHandle {
                    inner: JoinImpl::Real(Some(h)),
                    slot,
                }
            }
        }
    }

    /// Create a channel. `cap = None` means unbounded.
    pub fn channel<T: Send>(&self, cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        match &self.0 {
            RtImpl::Sim(core) => sim_channel(core.clone(), cap),
            RtImpl::Real(_) => real_channel(cap),
        }
    }
}

impl RealCore {
    fn sleep_real(&self, d: Dur) {
        let ns = d.as_nanos();
        if ns == 0 {
            std::thread::yield_now();
        } else if ns >= 200_000 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        } else {
            self.spin(d);
        }
    }

    fn spin(&self, d: Dur) {
        let until = Instant::now() + std::time::Duration::from_nanos(d.as_nanos());
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }
}

enum JoinImpl {
    Sim(Arc<SimCore>, Pid),
    Real(Option<std::thread::JoinHandle<()>>),
}

/// Handle to a spawned task.
pub struct JoinHandle<T> {
    inner: JoinImpl,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the task to finish and return its value.
    ///
    /// In simulation mode, a task that panicked poisons the whole simulation
    /// (see the scheduler docs), so `join` on it never returns normally.
    pub fn join(mut self) -> T {
        match &mut self.inner {
            JoinImpl::Sim(core, pid) => {
                core.join_participant(*pid);
            }
            JoinImpl::Real(h) => {
                if let Some(h) = h.take() {
                    if let Err(p) = h.join() {
                        std::panic::resume_unwind(p);
                    }
                }
            }
        }
        self.slot
            .lock()
            .take()
            .expect("joined task did not produce a value")
    }

    /// Whether the task has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            JoinImpl::Sim(core, pid) => core.is_finished(*pid),
            JoinImpl::Real(h) => h.as_ref().map(|h| h.is_finished()).unwrap_or(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_advances_only_by_sleep() {
        let ((), end) = Runtime::simulate(0, |rt| {
            assert_eq!(rt.now(), Time::ZERO);
            rt.sleep(Dur::micros(10));
            assert_eq!(rt.now(), Time(10_000));
            rt.work(Dur::micros(5));
            assert_eq!(rt.now(), Time(15_000));
        });
        assert_eq!(end, Time(15_000));
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let (order, _) = Runtime::simulate(0, |rt| {
            let (tx, rx) = rt.channel::<(u32, u64)>(None);
            for i in 0..3u32 {
                let tx = tx.clone();
                rt.spawn_with(&format!("w{i}"), move |rt| {
                    rt.sleep(Dur::micros(10 * (3 - i as u64)));
                    tx.send((i, rt.now().nanos())).unwrap();
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        // Worker 2 sleeps 10us, worker 1 20us, worker 0 30us.
        assert_eq!(order, vec![(2, 10_000), (1, 20_000), (0, 30_000)]);
    }

    #[test]
    fn join_returns_value_and_advances_clock() {
        let (v, end) = Runtime::simulate(7, |rt| {
            let h = rt.spawn_with("calc", |rt| {
                rt.sleep(Dur::millis(2));
                42u64
            });
            h.join()
        });
        assert_eq!(v, 42);
        assert_eq!(end, Time(2_000_000));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (produced_at, _) = Runtime::simulate(0, |rt| {
            let (tx, rx) = rt.channel::<u32>(Some(1));
            let consumer = rt.spawn_with("consumer", move |rt| {
                let mut last = 0;
                while let Ok(v) = rx.recv() {
                    rt.sleep(Dur::micros(100)); // slow consumer
                    last = v;
                }
                last
            });
            let mut times = Vec::new();
            for i in 0..4u32 {
                tx.send(i).unwrap();
                times.push(rt.now().nanos());
            }
            drop(tx);
            consumer.join();
            times
        });
        // First send is immediate; later sends are throttled by the consumer.
        assert_eq!(produced_at[0], 0);
        assert!(produced_at[3] >= 200_000, "{produced_at:?}");
    }

    #[test]
    fn recv_on_closed_channel_errors() {
        Runtime::simulate(0, |rt| {
            let (tx, rx) = rt.channel::<u8>(None);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert!(rx.recv().is_err());
        });
    }

    #[test]
    fn busy_accounting() {
        let ((me, total), _) = Runtime::simulate(0, |rt| {
            let h = rt.spawn_with("busy", |rt| {
                rt.work(Dur::micros(30));
            });
            rt.work(Dur::micros(10));
            rt.sleep(Dur::micros(100));
            h.join();
            (rt.my_busy(), rt.total_busy())
        });
        assert_eq!(me, Dur::micros(10));
        assert_eq!(total, Dur::micros(40));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        Runtime::simulate(0, |rt| {
            let (_tx, rx) = rt.channel::<u8>(None);
            // _tx is alive, so recv blocks forever with nobody to wake us.
            let _ = rx.recv();
        });
    }

    #[test]
    #[should_panic(expected = "participant 'boom' panicked")]
    fn participant_panic_poisons_simulation() {
        Runtime::simulate(0, |rt| {
            let h = rt.spawn_with("boom", |_rt| {
                panic!("intentional");
            });
            h.join()
        });
    }

    #[test]
    fn real_runtime_smoke() {
        let rt = Runtime::real(1);
        let (tx, rx) = rt.channel::<u32>(None);
        let h = rt.spawn_with("w", move |rt| {
            rt.sleep(Dur::micros(50));
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv(), Ok(5));
        h.join();
        assert!(rt.now().nanos() > 0);
    }

    #[test]
    fn zero_sleep_yields_fifo() {
        let (seqs, _) = Runtime::simulate(0, |rt| {
            let (tx, rx) = rt.channel::<u32>(None);
            for i in 0..2u32 {
                let tx = tx.clone();
                rt.spawn_with(&format!("y{i}"), move |rt| {
                    for k in 0..3u32 {
                        tx.send(i * 10 + k).unwrap();
                        rt.yield_now();
                    }
                });
            }
            drop(tx);
            rt.sleep(Dur::micros(1));
            rx.drain()
        });
        // Strict round-robin between the two yielding workers.
        assert_eq!(seqs, vec![0, 10, 1, 11, 2, 12]);
    }
}
