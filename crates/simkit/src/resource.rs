//! Passive timed resources: serialized links and k-channel service centers.
//!
//! These model contention points (a NIC, an NVMe device's internal
//! channels, a PCIe lane) without dedicating a scheduler participant to
//! each. A caller *reserves* service — which computes when the resource
//! will have finished its request — then sleeps on the runtime until that
//! virtual instant.
//!
//! Reservations are ordered by **requested start time**, not by call
//! order: staged models (fabric → device → fabric) reserve later resources
//! at future instants, and a resource must not let such a future booking
//! block an earlier-in-time request that merely *calls* later. Each
//! resource therefore keeps a timeline of busy intervals and gap-fills.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::plock::Mutex;

use crate::runtime::Runtime;
use crate::time::{Dur, Time};

/// How far behind the latest observed request time an interval must be
/// before it can be pruned. Virtual time only moves forward and staged
/// reservations only look forward, so anything this stale is unreachable.
const PRUNE_HORIZON_NS: u64 = 500_000_000; // 0.5 s of virtual time

/// An ordered set of non-overlapping busy intervals with gap-filling
/// reservation.
#[derive(Debug, Default)]
struct Timeline {
    /// start → end (non-overlapping, sorted by start).
    intervals: BTreeMap<u64, u64>,
    max_now: u64,
}

impl Timeline {
    /// Earliest start ≥ `now` where a `d`-long reservation fits.
    fn probe(&self, now: u64, d: u64) -> u64 {
        let mut t = now;
        for (&s, &e) in &self.intervals {
            if s >= t.saturating_add(d) {
                break; // gap [t, t+d) fits entirely before this interval
            }
            if e > t {
                t = e;
            }
        }
        t
    }

    /// Book [start, start+d); `start` must come from `probe` with no
    /// intervening commit.
    fn commit(&mut self, start: u64, d: u64) {
        if d == 0 {
            return;
        }
        let prev = self.intervals.insert(start, start + d);
        debug_assert!(prev.is_none(), "timeline double-booking");
    }

    fn reserve(&mut self, now: u64, d: u64) -> u64 {
        self.max_now = self.max_now.max(now);
        self.prune();
        let start = self.probe(now, d);
        self.commit(start, d);
        start + d
    }

    fn prune(&mut self) {
        let horizon = self.max_now.saturating_sub(PRUNE_HORIZON_NS);
        while let Some((&s, &e)) = self.intervals.first_key_value() {
            if e <= horizon {
                self.intervals.remove(&s);
            } else {
                break;
            }
        }
    }

    fn len(&self) -> usize {
        self.intervals.len()
    }
}

/// A serialized transmission link with fixed propagation latency and finite
/// bandwidth. Models a NIC port or a wire: transfers occupy the wire for
/// `bytes / bandwidth`, ordered by requested start time, then experience
/// the latency term.
#[derive(Clone)]
pub struct Link {
    inner: Arc<Mutex<LinkState>>,
    bytes_per_sec: f64,
    latency: Dur,
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("bytes_per_sec", &self.bytes_per_sec)
            .field("latency", &self.latency)
            .finish()
    }
}

struct LinkState {
    timeline: Timeline,
    bytes_moved: u64,
}

impl Link {
    pub fn new(bytes_per_sec: f64, latency: Dur) -> Link {
        Link {
            inner: Arc::new(Mutex::new(LinkState {
                timeline: Timeline::default(),
                bytes_moved: 0,
            })),
            bytes_per_sec,
            latency,
        }
    }

    /// Reserve the wire for `bytes` starting no earlier than `now`; returns
    /// the virtual instant at which the payload has fully arrived.
    pub fn reserve(&self, now: Time, bytes: u64) -> Time {
        let d = Dur::for_bytes(bytes, self.bytes_per_sec).as_nanos();
        let mut st = self.inner.lock();
        st.bytes_moved += bytes;
        let end = st.timeline.reserve(now.nanos(), d);
        Time(end) + self.latency
    }

    /// Transfer `bytes` across the link, sleeping until arrival.
    pub fn transfer(&self, rt: &Runtime, bytes: u64) {
        let done = self.reserve(rt.now(), bytes);
        let wait = done - rt.now();
        if !wait.is_zero() {
            rt.sleep(wait);
        }
    }

    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    pub fn latency(&self) -> Dur {
        self.latency
    }

    pub fn bytes_moved(&self) -> u64 {
        self.inner.lock().bytes_moved
    }

    /// Booked intervals currently tracked (diagnostics).
    pub fn pending_intervals(&self) -> usize {
        self.inner.lock().timeline.len()
    }
}

/// A service center with `k` parallel channels, each serving one request
/// at a time in requested-start order. Models an NVMe device's internal
/// parallelism: maximum throughput is `k / service_time`.
#[derive(Clone)]
pub struct Servers {
    inner: Arc<Mutex<ServerState>>,
}

impl std::fmt::Debug for Servers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Servers")
            .field("channels", &self.inner.lock().channels.len())
            .finish()
    }
}

struct ServerState {
    channels: Vec<Timeline>,
    served: u64,
}

impl Servers {
    pub fn new(k: usize) -> Servers {
        assert!(k > 0, "need at least one channel");
        Servers {
            inner: Arc::new(Mutex::new(ServerState {
                channels: (0..k).map(|_| Timeline::default()).collect(),
                served: 0,
            })),
        }
    }

    /// Reserve one channel for a request of duration `cost` arriving at
    /// `now`; returns the completion instant. Picks the channel that can
    /// finish earliest (deterministic: lowest index wins ties).
    pub fn reserve(&self, now: Time, cost: Dur) -> Time {
        let d = cost.as_nanos();
        let mut st = self.inner.lock();
        st.served += 1;
        let mut best = (u64::MAX, 0usize);
        for (i, ch) in st.channels.iter_mut().enumerate() {
            ch.max_now = ch.max_now.max(now.nanos());
            let start = ch.probe(now.nanos(), d);
            if start < best.0 {
                best = (start, i);
            }
        }
        let (start, idx) = best;
        st.channels[idx].commit(start, d);
        st.channels[idx].prune();
        Time(start + d)
    }

    /// Serve a request of duration `cost`, sleeping until completion.
    pub fn serve(&self, rt: &Runtime, cost: Dur) {
        let done = self.reserve(rt.now(), cost);
        let wait = done - rt.now();
        if !wait.is_zero() {
            rt.sleep(wait);
        }
    }

    pub fn served(&self) -> u64 {
        self.inner.lock().served
    }

    pub fn channels(&self) -> usize {
        self.inner.lock().channels.len()
    }
}

/// A counting semaphore over virtual time, used e.g. to bound queue depth.
/// FIFO fairness is provided by the underlying channel.
#[derive(Clone)]
pub struct Semaphore {
    slots_tx: crate::chan::Sender<()>,
    slots_rx: crate::chan::Receiver<()>,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Semaphore")
            .field("available", &self.available())
            .finish()
    }
}

impl Semaphore {
    pub fn new(rt: &Runtime, permits: usize) -> Semaphore {
        let (tx, rx) = rt.channel::<()>(None);
        for _ in 0..permits {
            tx.send(()).expect("receiver alive");
        }
        Semaphore {
            slots_tx: tx,
            slots_rx: rx,
        }
    }

    /// Acquire a permit, blocking in virtual time until one is available.
    pub fn acquire(&self) {
        self.slots_rx
            .recv()
            .expect("semaphore channel closed while acquiring");
    }

    /// Try to acquire a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        self.slots_rx.try_recv().is_ok()
    }

    /// Return a permit.
    pub fn release(&self) {
        self.slots_tx.send(()).expect("semaphore channel closed");
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.slots_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn link_serializes_transfers() {
        Runtime::simulate(0, |rt| {
            // 1 GB/s, 10us latency.
            let link = Link::new(1e9, Dur::micros(10));
            let t0 = rt.now();
            // Two back-to-back 1MB reservations: second waits for the first.
            let a = link.reserve(t0, 1_000_000);
            let b = link.reserve(t0, 1_000_000);
            assert_eq!(a, Time::ZERO + Dur::millis(1) + Dur::micros(10));
            assert_eq!(b, Time::ZERO + Dur::millis(2) + Dur::micros(10));
            assert_eq!(link.bytes_moved(), 2_000_000);
        });
    }

    #[test]
    fn link_idle_restart() {
        Runtime::simulate(0, |rt| {
            let link = Link::new(1e9, Dur::ZERO);
            link.transfer(rt, 1_000_000);
            assert_eq!(rt.now(), Time(1_000_000));
            rt.sleep(Dur::millis(5));
            // After idling, the next transfer starts fresh at `now`.
            let done = link.reserve(rt.now(), 1_000_000);
            assert_eq!(done, Time(7_000_000));
        });
    }

    #[test]
    fn future_booking_does_not_block_present_request() {
        // The regression behind collocated NVMe-oF nodes: a data return
        // reserved at a *future* device-completion instant must not delay a
        // small capsule reserved for *now*.
        Runtime::simulate(0, |rt| {
            let link = Link::new(1e9, Dur::ZERO);
            // Future booking: 1 MB starting at t = 1 ms.
            let fut = link.reserve(Time(1_000_000), 1_000_000);
            assert_eq!(fut, Time(2_000_000));
            // Present booking: 1 KB at t = 0 → fits in the gap before it.
            let nowr = link.reserve(rt.now(), 1_000);
            assert_eq!(nowr, Time(1_000));
            // A second future-ish request lands after the 1 MB one.
            let tail = link.reserve(Time(1_500_000), 1_000_000);
            assert_eq!(tail, Time(3_000_000));
        });
    }

    #[test]
    fn gap_filling_is_exact() {
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let link = Link::new(1e9, Dur::ZERO);
            link.reserve(Time(0), 1_000); // [0, 1us)
            link.reserve(Time(10_000), 1_000); // [10us, 11us)
                                               // 5us fits between them.
            let mid = link.reserve(Time(1_000), 5_000);
            assert_eq!(mid, Time(6_000));
            // 5us does NOT fit between 6us and 10us: goes after 11us.
            let after = link.reserve(Time(1_000), 5_000);
            assert_eq!(after, Time(16_000));
        });
    }

    #[test]
    fn timeline_prunes_stale_intervals() {
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let link = Link::new(1e9, Dur::ZERO);
            for i in 0..1000u64 {
                link.reserve(Time(i * 1_000), 500);
            }
            // Jump far ahead: old intervals get pruned.
            link.reserve(Time(10_000_000_000), 500);
            assert!(
                link.pending_intervals() < 10,
                "{}",
                link.pending_intervals()
            );
        });
    }

    #[test]
    fn servers_parallel_channels() {
        Runtime::simulate(0, |rt| {
            let srv = Servers::new(2);
            let t0 = rt.now();
            let c = Dur::micros(10);
            // Three requests on two channels: 10, 10, 20 us completions.
            assert_eq!(srv.reserve(t0, c), Time(10_000));
            assert_eq!(srv.reserve(t0, c), Time(10_000));
            assert_eq!(srv.reserve(t0, c), Time(20_000));
            assert_eq!(srv.served(), 3);
        });
    }

    #[test]
    fn servers_throughput_ceiling() {
        // k channels with service time s admit k/s requests per second.
        Runtime::simulate(0, |rt| {
            let srv = Servers::new(4);
            let s = Dur::micros(100);
            let mut last = Time::ZERO;
            for _ in 0..400 {
                last = srv.reserve(rt.now(), s);
            }
            // 400 requests / 4 channels * 100us = 10ms.
            assert_eq!(last, Time::ZERO + Dur::millis(10));
        });
    }

    #[test]
    fn servers_fill_gaps_for_early_requests() {
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let srv = Servers::new(1);
            // Future booking at 1 ms.
            assert_eq!(
                srv.reserve(Time(1_000_000), Dur::micros(100)),
                Time(1_100_000)
            );
            // Present request slots in before it.
            assert_eq!(srv.reserve(Time(0), Dur::micros(50)), Time(50_000));
        });
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let (max_in_flight, _) = Runtime::simulate(0, |rt| {
            let sem = Semaphore::new(rt, 3);
            let (tx, rx) = rt.channel::<i64>(None);
            let mut handles = Vec::new();
            for i in 0..10 {
                let sem = sem.clone();
                let tx = tx.clone();
                handles.push(rt.spawn(&format!("t{i}"), move |rt| {
                    sem.acquire();
                    tx.send(1).unwrap();
                    rt.sleep(Dur::micros(10));
                    tx.send(-1).unwrap();
                    sem.release();
                }));
            }
            drop(tx);
            for h in handles {
                h.join();
            }
            let mut cur = 0i64;
            let mut max = 0i64;
            while let Ok(v) = rx.recv() {
                cur += v;
                max = max.max(cur);
            }
            max
        });
        assert_eq!(max_in_flight, 3);
    }

    #[test]
    fn semaphore_try_acquire() {
        Runtime::simulate(0, |rt| {
            let sem = Semaphore::new(rt, 1);
            assert!(sem.try_acquire());
            assert!(!sem.try_acquire());
            sem.release();
            assert!(sem.try_acquire());
            assert_eq!(sem.available(), 0);
        });
    }
}
