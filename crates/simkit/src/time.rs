//! Virtual time primitives.
//!
//! All simulated experiments in this workspace are measured in *virtual
//! nanoseconds* managed by the [`crate::runtime::Runtime`]. Using dedicated
//! newtypes (rather than `std::time::{Instant, Duration}`) keeps virtual and
//! wall-clock time from being mixed accidentally and gives us cheap `Copy`
//! arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates at zero.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    #[inline]
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    #[inline]
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    #[inline]
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds; negative values clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        if s <= 0.0 {
            Dur::ZERO
        } else {
            Dur((s * 1e9).round() as u64)
        }
    }

    /// Build a duration from fractional microseconds; negative values clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Dur {
        Dur::from_secs_f64(us * 1e-6)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: Dur) -> Dur {
        Dur(self.0.min(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: Dur) -> Dur {
        Dur(self.0.max(rhs.0))
    }

    /// The virtual time to move `bytes` at `bytes_per_sec` throughput.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Dur {
        if bytes_per_sec <= 0.0 {
            return Dur::ZERO;
        }
        Dur::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: f64) -> Dur {
        Dur::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs.max(1))
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = Time::ZERO + Dur::micros(5) + Dur::nanos(250);
        assert_eq!(t.nanos(), 5_250);
        assert_eq!(t - Time(250), Dur::micros(5));
        assert_eq!(t.since(Time(250)), Dur::micros(5));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time(5) - Dur::nanos(10), Time::ZERO);
        assert_eq!(Dur::nanos(5).saturating_sub(Dur::nanos(10)), Dur::ZERO);
        assert_eq!(Time(5).since(Time(10)), Dur::ZERO);
    }

    #[test]
    fn constructors_consistent() {
        assert_eq!(Dur::secs(1), Dur::millis(1_000));
        assert_eq!(Dur::millis(1), Dur::micros(1_000));
        assert_eq!(Dur::micros(1), Dur::nanos(1_000));
        assert_eq!(Dur::from_secs_f64(1.5), Dur::millis(1_500));
        assert_eq!(Dur::from_secs_f64(-2.0), Dur::ZERO);
        assert_eq!(Dur::from_micros_f64(2.5), Dur::nanos(2_500));
    }

    #[test]
    fn bandwidth_duration() {
        // 1 MiB at 1 GiB/s is ~1/1024 s.
        let d = Dur::for_bytes(1 << 20, (1u64 << 30) as f64);
        let expect = 1e9 / 1024.0;
        assert!((d.as_nanos() as f64 - expect).abs() < 2.0, "{d:?}");
        assert_eq!(Dur::for_bytes(123, 0.0), Dur::ZERO);
    }

    #[test]
    fn scaling_ops() {
        assert_eq!(Dur::micros(3) * 4, Dur::micros(12));
        assert_eq!(Dur::micros(12) / 4, Dur::micros(3));
        assert_eq!(Dur::micros(10) * 0.5, Dur::micros(5));
        let total: Dur = [Dur::micros(1), Dur::micros(2)].into_iter().sum();
        assert_eq!(total, Dur::micros(3));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Dur::nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::secs(12)), "12.000s");
        assert_eq!(format!("{}", Time(1500)), "T+1.500us");
    }
}
