//! The deterministic virtual-time scheduler.
//!
//! Simulated "threads" (participants) are real OS threads, but the scheduler
//! enforces that **exactly one participant executes at any moment**. When the
//! running participant blocks — on a virtual-time sleep, a channel, or a join
//! — it hands control to the next runnable participant; if none is runnable,
//! the virtual clock jumps forward to the earliest sleeper. Because execution
//! is fully serialized and all tie-breaks are FIFO by a monotonically
//! increasing sequence number, a simulation is a deterministic function of
//! its inputs: identical runs produce identical event orders and identical
//! virtual timestamps, regardless of the host machine.
//!
//! This gives us the best of both worlds for reproducing a systems paper on
//! hardware we don't have: components are written in natural blocking style
//! (poll loops, queue pairs, copy-thread pools) and still produce exact,
//! machine-independent measurements.
//!
//! # Failure semantics
//!
//! Any panic inside a participant, and any detected deadlock, *poisons* the
//! simulation: every parked participant is woken with a shutdown signal and
//! the root call to [`crate::runtime::Runtime::sim`]'s closure panics with
//! the original message. A buggy simulation therefore fails fast and loud
//! instead of hanging the test suite.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::plock::{Condvar, Mutex, MutexGuard};

use crate::time::{Dur, Time};

/// Participant id within one simulation.
pub(crate) type Pid = usize;

/// Globally unique id per `SimCore`, used to verify a thread calls into the
/// simulation it actually belongs to.
static NEXT_CORE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (core id, pid) of the simulation this OS thread participates in.
    static CURRENT: Cell<Option<(u64, Pid)>> = const { Cell::new(None) };
}

/// Panic payload used to unwind non-root participants on shutdown/poison.
pub(crate) struct Shutdown;

thread_local! {
    /// Set just before raising `Shutdown` so the panic hook stays silent
    /// for this expected, internal unwind.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Install (once) a panic hook that suppresses output for the internal
/// `Shutdown` unwind while delegating everything else to the previous hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_OUTPUT.get() {
                return;
            }
            prev(info);
        }));
    });
}

/// Raise the quiet shutdown unwind.
fn raise_shutdown() -> ! {
    SUPPRESS_PANIC_OUTPUT.set(true);
    std::panic::panic_any(Shutdown);
}

struct Parker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Arc<Self> {
        Arc::new(Parker {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn park(&self) {
        let mut g = self.flag.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }

    fn unpark(&self) {
        let mut g = self.flag.lock();
        *g = true;
        self.cv.notify_one();
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Running,
    Ready,
    Sleeping,
    Blocked,
    Finished,
}

struct Part {
    name: String,
    parker: Arc<Parker>,
    status: Status,
    /// Virtual nanoseconds this participant spent in `work()` (busy CPU).
    busy_ns: u64,
    /// Virtual nanoseconds this participant spent in `sleep()` (parked,
    /// CPU idle — the complement of `busy_ns` for event-driven loops).
    idle_ns: u64,
    /// Participants blocked in `join()` on this one.
    join_waiters: Vec<Pid>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct Sched {
    now: u64,
    seq: u64,
    ready: VecDeque<Pid>,
    /// Min-heap of (wake time, seq, pid).
    sleepers: BinaryHeap<Reverse<(u64, u64, Pid)>>,
    parts: Vec<Part>,
    stopping: bool,
    /// Failure message when the simulation was poisoned by a panic/deadlock.
    poisoned: Option<String>,
}

/// One deterministic simulation instance.
pub(crate) struct SimCore {
    pub(crate) core_id: u64,
    state: Mutex<Sched>,
    pub(crate) seed: u64,
}

impl SimCore {
    pub(crate) fn new(seed: u64) -> Arc<Self> {
        install_quiet_hook();
        Arc::new(SimCore {
            core_id: NEXT_CORE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(Sched {
                now: 0,
                seq: 0,
                ready: VecDeque::new(),
                sleepers: BinaryHeap::new(),
                parts: Vec::new(),
                stopping: false,
                poisoned: None,
            }),
            seed,
        })
    }

    /// The pid of the calling thread within this core, or panic.
    fn my_pid(&self) -> Pid {
        match CURRENT.get() {
            Some((cid, pid)) if cid == self.core_id => pid,
            Some(_) => panic!("thread belongs to a different simulation runtime"),
            None => panic!("calling thread is not a participant of this simulation runtime"),
        }
    }

    pub(crate) fn now(&self) -> Time {
        Time(self.state.lock().now)
    }

    pub(crate) fn my_busy(&self) -> Dur {
        let pid = self.my_pid();
        Dur(self.state.lock().parts[pid].busy_ns)
    }

    pub(crate) fn total_busy(&self) -> Dur {
        Dur(self.state.lock().parts.iter().map(|p| p.busy_ns).sum())
    }

    pub(crate) fn my_idle(&self) -> Dur {
        let pid = self.my_pid();
        Dur(self.state.lock().parts[pid].idle_ns)
    }

    pub(crate) fn total_idle(&self) -> Dur {
        Dur(self.state.lock().parts.iter().map(|p| p.idle_ns).sum())
    }

    /// Register the calling thread as root participant (pid 0).
    pub(crate) fn enter_root(self: &Arc<Self>) {
        let mut g = self.state.lock();
        assert!(g.parts.is_empty(), "root already registered");
        g.parts.push(Part {
            name: "root".to_string(),
            parker: Parker::new(),
            status: Status::Running,
            busy_ns: 0,
            idle_ns: 0,
            join_waiters: Vec::new(),
            handle: None,
        });
        drop(g);
        CURRENT.set(Some((self.core_id, 0)));
    }

    /// Root finished: shut everything down and join all participant threads.
    pub(crate) fn exit_root(self: &Arc<Self>) -> Time {
        let mut g = self.state.lock();
        g.stopping = true;
        g.parts[0].status = Status::Finished;
        let end = Time(g.now);
        // Wake every parked participant; their next interaction with the
        // scheduler raises `Shutdown`, which their wrapper catches.
        let parkers: Vec<Arc<Parker>> = g
            .parts
            .iter()
            .filter(|p| p.status != Status::Finished)
            .map(|p| p.parker.clone())
            .collect();
        let handles: Vec<std::thread::JoinHandle<()>> =
            g.parts.iter_mut().filter_map(|p| p.handle.take()).collect();
        drop(g);
        for p in parkers {
            p.unpark();
        }
        for h in handles {
            let _ = h.join();
        }
        CURRENT.set(None);
        end
    }

    /// Poison the simulation: record the failure, wake everyone.
    fn poison(&self, msg: String) {
        let mut g = self.state.lock();
        if g.poisoned.is_none() {
            g.poisoned = Some(msg);
        }
        g.stopping = true;
        let parkers: Vec<Arc<Parker>> = g
            .parts
            .iter()
            .filter(|p| p.status != Status::Finished && p.status != Status::Running)
            .map(|p| p.parker.clone())
            .collect();
        drop(g);
        for p in parkers {
            p.unpark();
        }
    }

    /// Raise the appropriate unwind for the calling participant if the
    /// simulation is stopping. Root gets the poison message (a real panic);
    /// other participants get the quiet `Shutdown` signal.
    fn raise_if_stopping(&self, g: &MutexGuard<'_, Sched>, my: Pid) {
        if g.stopping {
            if my == 0 {
                let msg = g
                    .poisoned
                    .clone()
                    .unwrap_or_else(|| "simulation stopped".to_string());
                panic!("{msg}");
            }
            raise_shutdown();
        }
    }

    /// Hand control to the next runnable participant. The caller must have
    /// already recorded its own new status (and queued itself if Ready or
    /// Sleeping). If `park` is true, the caller parks until rescheduled.
    fn dispatch(&self, g: MutexGuard<'_, Sched>, my: Pid, park: bool) {
        let mut g = g;
        let next = if let Some(p) = g.ready.pop_front() {
            Some(p)
        } else if let Some(&Reverse((t, _, p))) = g.sleepers.peek() {
            g.sleepers.pop();
            debug_assert!(t >= g.now, "time went backwards");
            g.now = t;
            Some(p)
        } else {
            None
        };
        match next {
            Some(p) if p == my => {
                // We were the earliest sleeper / only ready entry: keep going.
                g.parts[my].status = Status::Running;
            }
            Some(p) => {
                g.parts[p].status = Status::Running;
                let parker = g.parts[p].parker.clone();
                drop(g);
                parker.unpark();
                if park {
                    self.park_current(my);
                }
            }
            None => {
                if park {
                    // Nothing can ever run again: hard deadlock. Poison so
                    // the whole simulation aborts instead of hanging.
                    let blocked: Vec<String> = g
                        .parts
                        .iter()
                        .filter(|p| p.status == Status::Blocked || p.status == Status::Sleeping)
                        .map(|p| p.name.clone())
                        .collect();
                    let me = g.parts[my].name.clone();
                    drop(g);
                    let msg = format!(
                        "simkit deadlock: '{me}' blocked with no runnable participant \
                         (blocked/sleeping: {blocked:?})"
                    );
                    self.poison(msg.clone());
                    panic!("{msg}");
                }
                // We're finishing and nothing is runnable; fine.
            }
        }
    }

    fn park_current(&self, my: Pid) {
        let parker = { self.state.lock().parts[my].parker.clone() };
        parker.park();
        let g = self.state.lock();
        self.raise_if_stopping(&g, my);
        debug_assert_eq!(g.parts[my].status, Status::Running);
    }

    /// Advance virtual time for the calling participant, parked idle.
    pub(crate) fn sleep(&self, d: Dur) {
        if !d.is_zero() {
            let my = self.my_pid();
            self.state.lock().parts[my].idle_ns += d.as_nanos();
        }
        self.advance(d);
    }

    /// Advance virtual time without touching busy/idle accounting. `sleep`
    /// and `work` differ only in which ledger they charge; the scheduling
    /// (and therefore every timestamp) is identical.
    fn advance(&self, d: Dur) {
        let my = self.my_pid();
        let mut g = self.state.lock();
        self.raise_if_stopping(&g, my);
        if d.is_zero() {
            // Zero-length sleep is a yield: go to the back of the ready queue.
            if g.ready.is_empty() && g.sleepers.is_empty() {
                return; // nobody else to run
            }
            g.parts[my].status = Status::Ready;
            g.ready.push_back(my);
            self.dispatch(g, my, true);
            return;
        }
        let wake = g.now + d.as_nanos();
        let seq = g.seq;
        g.seq += 1;
        g.parts[my].status = Status::Sleeping;
        g.sleepers.push(Reverse((wake, seq, my)));
        self.dispatch(g, my, true);
    }

    /// Like [`SimCore::sleep`] but accounted as busy CPU time.
    pub(crate) fn work(&self, d: Dur) {
        let my = self.my_pid();
        {
            let mut g = self.state.lock();
            g.parts[my].busy_ns += d.as_nanos();
        }
        self.advance(d);
    }

    /// Block the calling participant (channel/join wait). The waker must call
    /// [`SimCore::make_ready`]. Returns after being rescheduled.
    pub(crate) fn block(&self) {
        let my = self.my_pid();
        let mut g = self.state.lock();
        self.raise_if_stopping(&g, my);
        g.parts[my].status = Status::Blocked;
        self.dispatch(g, my, true);
    }

    /// Move a blocked participant to the ready queue (no-op for participants
    /// that are not blocked).
    pub(crate) fn make_ready(&self, pid: Pid) {
        let mut g = self.state.lock();
        if g.parts[pid].status == Status::Blocked {
            g.parts[pid].status = Status::Ready;
            g.ready.push_back(pid);
        }
    }

    /// Pid of the calling participant (for channel wait registration).
    pub(crate) fn current_pid(&self) -> Pid {
        self.my_pid()
    }

    /// Spawn a new participant running `f`.
    pub(crate) fn spawn_participant(
        self: &Arc<Self>,
        name: &str,
        f: Box<dyn FnOnce() + Send>,
    ) -> Pid {
        let mut g = self.state.lock();
        let my = CURRENT.get().map(|(_, p)| p).unwrap_or(0);
        self.raise_if_stopping(&g, my);
        let pid = g.parts.len();
        let parker = Parker::new();
        g.parts.push(Part {
            name: name.to_string(),
            parker: parker.clone(),
            status: Status::Ready,
            busy_ns: 0,
            idle_ns: 0,
            join_waiters: Vec::new(),
            handle: None,
        });
        g.ready.push_back(pid);
        drop(g);

        let core = Arc::clone(self);
        let tname = name.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("sim:{tname}"))
            .spawn(move || {
                CURRENT.set(Some((core.core_id, pid)));
                // Wait to be scheduled for the first time.
                parker.park();
                {
                    let g = core.state.lock();
                    if g.stopping {
                        return;
                    }
                    debug_assert_eq!(g.parts[pid].status, Status::Running);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                match result {
                    Ok(()) => core.finish_participant(pid),
                    Err(payload) => {
                        if payload.downcast_ref::<Shutdown>().is_some() {
                            // Simulation is tearing down; exit quietly.
                            return;
                        }
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        let name = {
                            let g = core.state.lock();
                            g.parts[pid].name.clone()
                        };
                        core.poison(format!("participant '{name}' panicked: {msg}"));
                    }
                }
            })
            .expect("failed to spawn participant thread");
        self.state.lock().parts[pid].handle = Some(handle);
        pid
    }

    fn finish_participant(&self, pid: Pid) {
        let mut g = self.state.lock();
        if g.stopping {
            return;
        }
        g.parts[pid].status = Status::Finished;
        let waiters = std::mem::take(&mut g.parts[pid].join_waiters);
        for w in waiters {
            if g.parts[w].status == Status::Blocked {
                g.parts[w].status = Status::Ready;
                g.ready.push_back(w);
            }
        }
        self.dispatch(g, pid, false);
    }

    /// Block until participant `pid` finishes.
    pub(crate) fn join_participant(&self, pid: Pid) {
        loop {
            let my = self.my_pid();
            let mut g = self.state.lock();
            self.raise_if_stopping(&g, my);
            if g.parts[pid].status == Status::Finished {
                return;
            }
            g.parts[pid].join_waiters.push(my);
            g.parts[my].status = Status::Blocked;
            self.dispatch(g, my, true);
        }
    }

    /// Whether the participant has finished.
    pub(crate) fn is_finished(&self, pid: Pid) -> bool {
        self.state.lock().parts[pid].status == Status::Finished
    }
}
