//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload generators, shuffle
//! sequences, timing jitter) draws from a [`SplitMix64`] stream derived from
//! a single experiment seed, so whole multi-node simulations replay
//! bit-identically. Distribution helpers (uniform, normal, shuffles,
//! byte fills) are implemented directly on [`SplitMix64`], so the crate
//! needs no external RNG machinery.

/// Sebastiano Vigna's SplitMix64 generator.
///
/// Tiny state, excellent equidistribution for its size, and — critically for
/// us — trivially *splittable*: [`SplitMix64::derive`] produces statistically
/// independent child streams from (seed, stream-label) pairs, which is how a
/// single experiment seed fans out to per-node, per-device, per-component
/// streams without coordination.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Create a generator from a raw seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child stream labelled `stream`.
    ///
    /// Children with distinct labels (or distinct parent seeds) produce
    /// unrelated sequences; the same `(seed, stream)` pair always produces
    /// the same sequence.
    #[inline]
    pub fn derive(seed: u64, stream: u64) -> Self {
        // Mix the label in twice with different offsets so that
        // (seed, stream) and (seed + 1, stream - GOLDEN) don't collide.
        let s = mix(seed ^ 0x9e3779b97f4a7c15)
            .wrapping_add(mix(stream.wrapping_mul(0xd1342543de82ef95)));
        SplitMix64 { state: mix(s) }
    }

    /// Derive a child stream from this generator's seed and a label.
    #[inline]
    pub fn child(&self, stream: u64) -> Self {
        Self::derive(self.state, stream)
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for simulation workloads.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal deviate (Box–Muller; one value per call, the pair's
    /// twin is discarded to keep the state machine simple).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.f64();
            if u > 1e-12 {
                let v = self.f64();
                return (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
            }
        }
    }

    /// Log-normal deviate with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n` as `u32` indices (n must fit in u32).
    pub fn permutation(&mut self, n: usize) -> Vec<u32> {
        assert!(
            n <= u32::MAX as usize,
            "permutation too large for u32 indices"
        );
        let mut v: Vec<u32> = (0..n as u32).collect();
        self.shuffle(&mut v);
        v
    }

    /// Next raw 32-bit value (the high half of [`SplitMix64::next`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fill `dest` with pseudo-random bytes from this stream.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

/// Fill `buf` with deterministic pseudo-random bytes that are a pure function
/// of `(seed, tag)`. Used to synthesize sample payloads that can be verified
/// after travelling through the whole storage stack without storing a copy.
pub fn fill_deterministic(buf: &mut [u8], seed: u64, tag: u64) {
    SplitMix64::derive(seed, tag).fill_bytes(buf);
}

/// 64-bit FNV-1a, used for content checksums and name hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::derive(42, 7);
        let mut b = SplitMix64::derive(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = SplitMix64::derive(42, 7);
        let mut b = SplitMix64::derive(42, 8);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::new(3);
        let n = 20_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = SplitMix64::new(5);
        let p = r.permutation(1000);
        let mut seen = vec![false; 1000];
        for &i in &p {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        // Should not be the identity permutation.
        assert!(p.iter().enumerate().any(|(i, &x)| i as u32 != x));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut buf = [0u8; 13];
        fill_deterministic(&mut buf, 1, 2);
        let mut buf2 = [0u8; 13];
        fill_deterministic(&mut buf2, 1, 2);
        assert_eq!(buf, buf2);
        let mut buf3 = [0u8; 13];
        fill_deterministic(&mut buf3, 1, 3);
        assert_ne!(buf, buf3);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
