//! Channels that work in both virtual-time and real-time runtimes.
//!
//! In simulation mode a blocked receiver/sender is descheduled through the
//! deterministic scheduler; wake order is FIFO, so message delivery order is
//! reproducible. In real mode the implementation delegates to the in-tree
//! blocking MPMC channel ([`crate::mpmc`]). Sending and receiving consume
//! **zero virtual time**; processing costs are modelled explicitly by the
//! components via `Runtime::work`.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::mpmc;
use crate::plock::Mutex;
use crate::sched::{Pid, SimCore};

/// Error returned by `recv` when the channel is empty and all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by `send` when all receivers are gone (payload returned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by `try_recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct SimState<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
    recv_waiters: VecDeque<Pid>,
    send_waiters: VecDeque<Pid>,
}

struct SimChan<T> {
    core: Arc<SimCore>,
    st: Mutex<SimState<T>>,
}

impl<T> SimChan<T> {
    fn wake_one_recv(&self, st: &mut SimState<T>) {
        if let Some(p) = st.recv_waiters.pop_front() {
            self.core.make_ready(p);
        }
    }

    fn wake_one_send(&self, st: &mut SimState<T>) {
        if let Some(p) = st.send_waiters.pop_front() {
            self.core.make_ready(p);
        }
    }

    fn wake_all(&self, st: &mut SimState<T>) {
        for p in st.recv_waiters.drain(..) {
            self.core.make_ready(p);
        }
        for p in st.send_waiters.drain(..) {
            self.core.make_ready(p);
        }
    }
}

enum SenderImpl<T> {
    Sim(Arc<SimChan<T>>),
    Real(mpmc::Tx<T>),
}

enum ReceiverImpl<T> {
    Sim(Arc<SimChan<T>>),
    Real(mpmc::Rx<T>),
}

/// Sending half of a channel (cloneable; MPMC).
pub struct Sender<T>(SenderImpl<T>);

/// Receiving half of a channel (cloneable; MPMC).
pub struct Receiver<T>(ReceiverImpl<T>);

pub(crate) fn sim_channel<T: Send>(
    core: Arc<SimCore>,
    cap: Option<usize>,
) -> (Sender<T>, Receiver<T>) {
    let ch = Arc::new(SimChan {
        core,
        st: Mutex::new(SimState {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            recv_waiters: VecDeque::new(),
            send_waiters: VecDeque::new(),
        }),
    });
    (
        Sender(SenderImpl::Sim(ch.clone())),
        Receiver(ReceiverImpl::Sim(ch)),
    )
}

pub(crate) fn real_channel<T: Send>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let (s, r) = mpmc::channel(cap);
    (Sender(SenderImpl::Real(s)), Receiver(ReceiverImpl::Real(r)))
}

impl<T: Send> Sender<T> {
    /// Send a value, blocking (in virtual or real time) while the channel is
    /// at capacity. Returns the value back if all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderImpl::Sim(ch) => loop {
                let mut st = ch.st.lock();
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    ch.wake_one_recv(&mut st);
                    return Ok(());
                }
                let me = ch.core.current_pid();
                st.send_waiters.push_back(me);
                drop(st);
                // `block()` returns when a receiver frees space; retry.
                ch.core.block();
            },
            SenderImpl::Real(s) => s.send(value).map_err(SendError),
        }
    }

    /// Non-blocking send. On a full channel returns `Err` with the value.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        match &self.0 {
            SenderImpl::Sim(ch) => {
                let mut st = ch.st.lock();
                if st.receivers == 0 || st.cap.is_some_and(|c| st.queue.len() >= c) {
                    return Err(value);
                }
                st.queue.push_back(value);
                ch.wake_one_recv(&mut st);
                Ok(())
            }
            SenderImpl::Real(s) => s.try_send(value),
        }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        match &self.0 {
            SenderImpl::Sim(ch) => ch.st.lock().queue.len(),
            SenderImpl::Real(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Receiver<T> {
    /// Receive a value, blocking until one is available or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverImpl::Sim(ch) => loop {
                let mut st = ch.st.lock();
                if let Some(v) = st.queue.pop_front() {
                    ch.wake_one_send(&mut st);
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                let me = ch.core.current_pid();
                st.recv_waiters.push_back(me);
                drop(st);
                ch.core.block();
            },
            ReceiverImpl::Real(r) => r.recv().map_err(|_| RecvError),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverImpl::Sim(ch) => {
                let mut st = ch.st.lock();
                if let Some(v) = st.queue.pop_front() {
                    ch.wake_one_send(&mut st);
                    return Ok(v);
                }
                if st.senders == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
            ReceiverImpl::Real(r) => r.try_recv().map_err(|e| match e {
                mpmc::TryRecvErr::Empty => TryRecvError::Empty,
                mpmc::TryRecvErr::Disconnected => TryRecvError::Disconnected,
            }),
        }
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Ok(v) = self.try_recv() {
            out.push(v);
        }
        out
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        match &self.0 {
            ReceiverImpl::Sim(ch) => ch.st.lock().queue.len(),
            ReceiverImpl::Real(r) => r.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderImpl::Sim(ch) => {
                ch.st.lock().senders += 1;
                Sender(SenderImpl::Sim(ch.clone()))
            }
            SenderImpl::Real(s) => Sender(SenderImpl::Real(s.clone())),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            ReceiverImpl::Sim(ch) => {
                ch.st.lock().receivers += 1;
                Receiver(ReceiverImpl::Sim(ch.clone()))
            }
            ReceiverImpl::Real(r) => Receiver(ReceiverImpl::Real(r.clone())),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let SenderImpl::Sim(ch) = &self.0 {
            let mut st = ch.st.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Receivers must observe disconnection.
                ch.wake_all(&mut st);
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let ReceiverImpl::Sim(ch) = &self.0 {
            let mut st = ch.st.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                ch.wake_all(&mut st);
            }
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver")
    }
}
