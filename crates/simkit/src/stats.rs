//! Measurement helpers: streaming summaries, log-scale histograms and
//! throughput meters, all in terms of virtual time.

use crate::time::{Dur, Time};

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn add_dur(&mut self, d: Dur) {
        self.add(d.as_nanos() as f64);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn total(&self) -> f64 {
        self.mean * self.n as f64
    }

    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram for latency-style values (nanoseconds).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>, // bucket i counts values in [2^i, 2^(i+1))
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    pub fn add(&mut self, v: u64) {
        let idx = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    pub fn add_dur(&mut self, d: Dur) {
        self.add(d.as_nanos());
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact, unlike the bucketed quantiles).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (bucket upper bound containing the q-quantile).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Counts discrete events (samples read, bytes moved) over a virtual-time
/// window and reports rates.
#[derive(Clone, Debug)]
pub struct Meter {
    start: Time,
    end: Time,
    events: u64,
    bytes: u64,
}

impl Meter {
    pub fn start_at(t: Time) -> Self {
        Meter {
            start: t,
            end: t,
            events: 0,
            bytes: 0,
        }
    }

    pub fn record(&mut self, now: Time, events: u64, bytes: u64) {
        self.events += events;
        self.bytes += bytes;
        if now > self.end {
            self.end = now;
        }
    }

    pub fn events(&self) -> u64 {
        self.events
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn elapsed(&self) -> Dur {
        self.end - self.start
    }

    /// Events per second of virtual time.
    pub fn event_rate(&self) -> f64 {
        let s = self.elapsed().as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.events as f64 / s
        }
    }

    /// Bytes per second of virtual time.
    pub fn byte_rate(&self) -> f64 {
        let s = self.elapsed().as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / s
        }
    }

    pub fn merge_window(&mut self, other: &Meter) {
        self.events += other.events;
        self.bytes += other.bytes;
        self.start = self.start.min(other.start);
        self.end = self.end.max(other.end);
    }
}

/// Pretty-print a rate in human units (e.g. "1.23 M/s").
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K/s", per_sec / 1e3)
    } else {
        format!("{:.2} /s", per_sec)
    }
}

/// Pretty-print a byte rate (e.g. "2.20 GB/s").
pub fn fmt_bytes_rate(bytes_per_sec: f64) -> String {
    if bytes_per_sec >= 1e9 {
        format!("{:.2} GB/s", bytes_per_sec / 1e9)
    } else if bytes_per_sec >= 1e6 {
        format!("{:.2} MB/s", bytes_per_sec / 1e6)
    } else if bytes_per_sec >= 1e3 {
        format!("{:.2} KB/s", bytes_per_sec / 1e3)
    } else {
        format!("{:.2} B/s", bytes_per_sec)
    }
}

/// Pretty-print a byte count (e.g. "147.0 KB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{} B", bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.add(v);
        }
        assert_eq!(h.count(), 1000);
        // Median of 1..=1000 is ~500, bucket upper bound 512.
        assert_eq!(h.quantile(0.5), 512);
        assert!(h.quantile(1.0) >= 1000);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn meter_rates() {
        let mut m = Meter::start_at(Time::ZERO);
        m.record(Time::ZERO + Dur::secs(2), 100, 2_000_000_000);
        assert_eq!(m.events(), 100);
        assert!((m.event_rate() - 50.0).abs() < 1e-9);
        assert!((m.byte_rate() - 1e9).abs() < 1.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_rate(1.5e6), "1.50 M/s");
        assert_eq!(fmt_bytes_rate(2.2e9), "2.20 GB/s");
        assert_eq!(fmt_bytes(147_000), "147.0 KB");
    }
}
