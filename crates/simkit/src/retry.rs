//! Bounded retry with deterministic exponential backoff in virtual time.
//!
//! Every recovery path in the workspace (the DLFS engine's media-error
//! resubmission, octofs cluster reads, fabric RPC calls) shares one
//! [`RetryPolicy`]: attempts are capped, backoff doubles from a base up to
//! a ceiling, and — because delays are pure functions of the attempt
//! number — a replayed simulation retries at bit-identical virtual
//! instants. No jitter: determinism is worth more here than thundering-herd
//! avoidance, and callers that need decorrelation already run on
//! independent virtual timelines.

use crate::time::{Dur, Time};

/// A bounded-attempt, exponential-backoff retry schedule.
///
/// `max_attempts` counts *total* submissions, so `max_attempts == 1` means
/// "never retry". After the `n`-th failed attempt the caller waits
/// [`RetryPolicy::backoff_after`]`(n)` before resubmitting, unless
/// [`RetryPolicy::next_delay`] says the budget is spent.
///
/// ```
/// use simkit::retry::RetryPolicy;
/// use simkit::time::Dur;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.backoff_after(1), Dur::micros(20));
/// assert_eq!(p.backoff_after(2), Dur::micros(40));
/// assert!(p.next_delay(p.max_attempts).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submissions allowed, including the first.
    pub max_attempts: u32,
    /// Backoff after the first failure; doubles per subsequent failure.
    pub base_backoff: Dur,
    /// Ceiling on any single backoff interval.
    pub max_backoff: Dur,
}

impl Default for RetryPolicy {
    /// 12 attempts backing off 20 µs → 2 ms caps the total wait near 10 ms:
    /// enough to ride out a few-millisecond target crash/restart window
    /// without turning a genuinely dead device into an unbounded stall.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Dur::micros(20),
            max_backoff: Dur::millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that fails immediately on the first error.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Backoff interval after `failed_attempts` consecutive failures
    /// (1-based): `min(base << (n-1), max)`, shift-saturating.
    pub fn backoff_after(&self, failed_attempts: u32) -> Dur {
        if failed_attempts == 0 {
            return Dur::ZERO;
        }
        let shift = failed_attempts - 1;
        let base = self.base_backoff.as_nanos();
        let raw = if shift >= 63 || base.leading_zeros() <= shift {
            u64::MAX
        } else {
            base << shift
        };
        Dur::nanos(raw).min(self.max_backoff)
    }

    /// Delay before the next submission given `failed_attempts` so far, or
    /// `None` when the attempt budget is exhausted.
    pub fn next_delay(&self, failed_attempts: u32) -> Option<Dur> {
        if failed_attempts >= self.max_attempts {
            None
        } else {
            Some(self.backoff_after(failed_attempts))
        }
    }

    /// Deadline-aware variant: also gives up when waiting out the backoff
    /// would land past `deadline`, so `ReadRequest` deadlines are honored
    /// mid-retry instead of after one more doomed round trip.
    pub fn next_delay_before(
        &self,
        failed_attempts: u32,
        now: Time,
        deadline: Option<Time>,
    ) -> Option<Dur> {
        let d = self.next_delay(failed_attempts)?;
        match deadline {
            Some(dl) if now + d > dl => None,
            _ => Some(d),
        }
    }

    /// Worst-case total backoff the policy can spend (sum over all retries).
    /// Useful for sizing crash windows in tests.
    pub fn total_backoff(&self) -> Dur {
        (1..self.max_attempts).map(|n| self.backoff_after(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Dur::micros(10),
            max_backoff: Dur::micros(75),
        };
        assert_eq!(p.backoff_after(1), Dur::micros(10));
        assert_eq!(p.backoff_after(2), Dur::micros(20));
        assert_eq!(p.backoff_after(3), Dur::micros(40));
        assert_eq!(p.backoff_after(4), Dur::micros(75));
        assert_eq!(p.backoff_after(9), Dur::micros(75));
        assert_eq!(p.backoff_after(0), Dur::ZERO);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Dur::millis(1),
            max_backoff: Dur::secs(3600),
        };
        assert_eq!(p.backoff_after(200), Dur::secs(3600));
        assert_eq!(p.backoff_after(64), Dur::secs(3600));
    }

    #[test]
    fn attempt_budget_is_total_submissions() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        assert!(p.next_delay(1).is_some());
        assert!(p.next_delay(2).is_some());
        assert!(p.next_delay(3).is_none());
        assert!(RetryPolicy::no_retries().next_delay(1).is_none());
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let p = RetryPolicy::default();
        let now = Time::ZERO + Dur::micros(100);
        // Without a deadline the second attempt is allowed.
        assert_eq!(p.next_delay_before(1, now, None), Some(Dur::micros(20)));
        // A deadline right at now + backoff still allows it…
        let dl = now + Dur::micros(20);
        assert_eq!(p.next_delay_before(1, now, Some(dl)), Some(Dur::micros(20)));
        // …one nanosecond earlier does not.
        let dl = now + Dur::micros(20) - Dur::nanos(1);
        assert_eq!(p.next_delay_before(1, now, Some(dl)), None);
    }

    #[test]
    fn total_backoff_sums_retries() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Dur::micros(10),
            max_backoff: Dur::micros(25),
        };
        // Retries after attempts 1, 2, 3: 10 + 20 + 25.
        assert_eq!(p.total_backoff(), Dur::micros(55));
    }
}
