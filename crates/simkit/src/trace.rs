//! Lightweight event tracing over virtual time.
//!
//! A [`Tracer`] collects `(time, task, label)` events from anywhere in a
//! simulation; afterwards the trace can be queried, diffed between runs
//! (determinism checks), or rendered as a text timeline. Tracing is
//! explicit and zero-cost when no tracer is attached.

use std::sync::Arc;

use crate::plock::Mutex;

use crate::runtime::Runtime;
use crate::time::Time;

/// One trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub at: Time,
    pub task: String,
    pub label: String,
}

/// A shared, append-only event sink.
#[derive(Clone, Default)]
pub struct Tracer {
    events: Arc<Mutex<Vec<Event>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("events", &self.events.lock().len())
            .finish()
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Record an event at the current virtual time.
    pub fn event(&self, rt: &Runtime, task: &str, label: impl Into<String>) {
        self.events.lock().push(Event {
            at: rt.now(),
            task: task.to_string(),
            label: label.into(),
        });
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot of all events in record order (which equals virtual-time
    /// order in a deterministic simulation).
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Events whose label contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<Event> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.label.contains(needle))
            .cloned()
            .collect()
    }

    /// Time between the first event matching `from` and the first matching
    /// `to` (a span measurement).
    pub fn span(&self, from: &str, to: &str) -> Option<crate::time::Dur> {
        let g = self.events.lock();
        let start = g.iter().find(|e| e.label.contains(from))?.at;
        let end = g.iter().find(|e| e.label.contains(to))?.at;
        Some(end - start)
    }

    /// Render a text timeline (one line per event).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().iter() {
            out.push_str(&format!(
                "{:>14}  {:<16} {}\n",
                format!("{}", e.at),
                e.task,
                e.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn records_in_time_order() {
        let tracer = Tracer::new();
        let t2 = tracer.clone();
        Runtime::simulate(0, move |rt| {
            t2.event(rt, "root", "start");
            let t3 = t2.clone();
            let h = rt.spawn("w", move |rt| {
                rt.sleep(Dur::micros(5));
                t3.event(rt, "w", "worker-did-thing");
            });
            rt.sleep(Dur::micros(2));
            t2.event(rt, "root", "mid");
            h.join();
            t2.event(rt, "root", "end");
        });
        let ev = tracer.snapshot();
        assert_eq!(ev.len(), 4);
        assert!(ev.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(ev[0].label, "start");
        assert_eq!(ev[3].label, "end");
        assert_eq!(ev[3].at.nanos(), 5_000);
    }

    #[test]
    fn span_and_matching() {
        let tracer = Tracer::new();
        let t2 = tracer.clone();
        Runtime::simulate(0, move |rt| {
            t2.event(rt, "io", "fetch:begin");
            rt.sleep(Dur::micros(120));
            t2.event(rt, "io", "fetch:end");
        });
        assert_eq!(
            tracer.span("fetch:begin", "fetch:end"),
            Some(Dur::micros(120))
        );
        assert_eq!(tracer.matching("fetch").len(), 2);
        assert_eq!(tracer.span("nope", "fetch:end"), None);
    }

    #[test]
    fn traces_are_deterministic() {
        let run = || {
            let tracer = Tracer::new();
            let t = tracer.clone();
            Runtime::simulate(7, move |rt| {
                for i in 0..5u64 {
                    let t = t.clone();
                    rt.spawn(&format!("t{i}"), move |rt| {
                        rt.sleep(Dur::nanos(i * 37 + 11));
                        t.event(rt, &format!("t{i}"), format!("tick{i}"));
                    });
                }
                rt.sleep(Dur::micros(1));
            });
            tracer.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_contains_events() {
        let tracer = Tracer::new();
        let t = tracer.clone();
        Runtime::simulate(0, move |rt| {
            t.event(rt, "a", "hello");
        });
        let text = tracer.render();
        assert!(text.contains("hello"));
        assert!(text.contains("a"));
    }
}
