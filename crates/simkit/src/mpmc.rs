//! A small blocking MPMC channel for the real-time runtime.
//!
//! Replaces `crossbeam_channel` in [`crate::chan`]'s real mode: cloneable
//! senders *and* receivers, optional capacity bound, and disconnect
//! semantics (`recv` fails once the queue is empty and every sender is
//! gone; `send` fails once every receiver is gone). Built on
//! [`crate::plock`] so the whole workspace stays dependency-free.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::plock::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    st: Mutex<State<T>>,
    /// Signalled when the queue gains an element or the last sender leaves.
    readable: Condvar,
    /// Signalled when the queue loses an element or the last receiver leaves.
    writable: Condvar,
}

pub(crate) struct Tx<T>(Arc<Shared<T>>);
pub(crate) struct Rx<T>(Arc<Shared<T>>);

pub(crate) fn channel<T>(cap: Option<usize>) -> (Tx<T>, Rx<T>) {
    let shared = Arc::new(Shared {
        st: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (Tx(shared.clone()), Rx(shared))
}

impl<T> Tx<T> {
    /// Blocking send; returns the value back once all receivers are gone.
    pub(crate) fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.0.st.lock();
        loop {
            if st.receivers == 0 {
                return Err(value);
            }
            if st.cap.is_none_or(|c| st.queue.len() < c) {
                st.queue.push_back(value);
                self.0.readable.notify_one();
                return Ok(());
            }
            self.0.writable.wait(&mut st);
        }
    }

    /// Non-blocking send; `Err` returns the value on a full/closed channel.
    pub(crate) fn try_send(&self, value: T) -> Result<(), T> {
        let mut st = self.0.st.lock();
        if st.receivers == 0 || st.cap.is_some_and(|c| st.queue.len() >= c) {
            return Err(value);
        }
        st.queue.push_back(value);
        self.0.readable.notify_one();
        Ok(())
    }

    pub(crate) fn len(&self) -> usize {
        self.0.st.lock().queue.len()
    }
}

/// Error from [`Rx::try_recv`].
pub(crate) enum TryRecvErr {
    Empty,
    Disconnected,
}

impl<T> Rx<T> {
    /// Blocking receive; fails once the queue is empty and all senders gone.
    pub(crate) fn recv(&self) -> Result<T, ()> {
        let mut st = self.0.st.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.0.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(());
            }
            self.0.readable.wait(&mut st);
        }
    }

    pub(crate) fn try_recv(&self) -> Result<T, TryRecvErr> {
        let mut st = self.0.st.lock();
        match st.queue.pop_front() {
            Some(v) => {
                self.0.writable.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvErr::Disconnected),
            None => Err(TryRecvErr::Empty),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.0.st.lock().queue.len()
    }
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        self.0.st.lock().senders += 1;
        Tx(self.0.clone())
    }
}

impl<T> Clone for Rx<T> {
    fn clone(&self) -> Self {
        self.0.st.lock().receivers += 1;
        Rx(self.0.clone())
    }
}

impl<T> Drop for Tx<T> {
    fn drop(&mut self) {
        let mut st = self.0.st.lock();
        st.senders -= 1;
        if st.senders == 0 {
            self.0.readable.notify_all();
        }
    }
}

impl<T> Drop for Rx<T> {
    fn drop(&mut self) {
        let mut st = self.0.st.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.0.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_fanout_fanin() {
        let (tx, rx) = channel::<u64>(None);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let rx2 = rx.clone();
        let consumer = std::thread::spawn(move || {
            let mut n = 0;
            while rx2.recv().is_ok() {
                n += 1;
            }
            n
        });
        let mut n = 0;
        while rx.recv().is_ok() {
            n += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n + consumer.join().unwrap(), 400);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::<u32>(Some(1));
        tx.send(1).unwrap();
        assert!(tx.try_send(2).is_err());
        assert_eq!(rx.recv(), Ok(1));
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = channel::<u32>(None);
        drop(rx);
        assert!(tx.send(5).is_err());
        let (tx, rx) = channel::<u32>(None);
        drop(tx);
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvErr::Disconnected)));
    }
}
