//! A deterministic, virtual-time-aware metrics registry.
//!
//! Every layer of the stack (block devices, fabric, the DLFS engine, the
//! kernel baselines, the benchmark harness) registers named **counters**,
//! **gauges** and **latency histograms** in one shared [`Registry`], and a
//! [`Snapshot`] freezes them into a structured epoch report.
//!
//! Design points:
//!
//! * **Cheap handles.** `registry.counter("dlfs.io.requests_posted")`
//!   returns an [`Counter`] backed by one atomic; recording on the hot
//!   path is a relaxed add, no map lookups. Handles are `Clone` and can be
//!   stashed inside components.
//! * **One flat namespace.** Dotted names (`layer.instance.metric`, e.g.
//!   `blocksim.dev0.retries`) make reports diffable and greppable across
//!   systems; snapshots render sorted by name.
//! * **Deterministic.** All values derive from virtual-time execution and
//!   integer arithmetic; rendering a snapshot of the same simulation seed
//!   twice produces byte-identical text. This is enforced by tests and is
//!   what makes `BENCH_*.json`-style trajectories trustworthy.
//! * **Latency histograms** use the power-of-two buckets of
//!   [`crate::stats::Histogram`]; quantiles report the bucket upper bound,
//!   which is exact enough to attribute per-stage cost (prep/post/poll/
//!   copy) and stable under refactoring.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::plock::Mutex;
use crate::stats::Histogram;
use crate::time::Dur;

/// A monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, resident chunks, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram handle (values in nanoseconds by convention).
#[derive(Clone, Debug, Default)]
pub struct Histo(Arc<Mutex<Histogram>>);

impl Histo {
    pub fn record(&self, v: u64) {
        self.0.lock().add(v);
    }

    pub fn record_dur(&self, d: Dur) {
        self.record(d.as_nanos());
    }

    /// Snapshot of this one histogram.
    pub fn summary(&self) -> HistoSummary {
        HistoSummary::from(&self.0.lock())
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histo(_) => "histogram",
        }
    }
}

/// The shared metrics registry. Cloning is cheap (`Arc` inside); a clone
/// made with [`Registry::scoped`] prefixes every name it registers, so a
/// component can be handed `registry.scoped("blocksim.dev0")` and register
/// plain `"retries"`.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    prefix: String,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A handle onto the same registry that prepends `prefix.` to every
    /// metric name registered through it.
    pub fn scoped(&self, prefix: &str) -> Registry {
        let prefix = if self.prefix.is_empty() {
            prefix.to_string()
        } else {
            format!("{}.{prefix}", self.prefix)
        };
        Registry {
            metrics: self.metrics.clone(),
            prefix,
        }
    }

    fn full(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Get-or-create the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let full = self.full(name);
        let mut g = self.metrics.lock();
        match g
            .entry(full.clone())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{full}' already registered as {}", other.kind()),
        }
    }

    /// Get-or-create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let full = self.full(name);
        let mut g = self.metrics.lock();
        match g
            .entry(full.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(v) => v.clone(),
            other => panic!("metric '{full}' already registered as {}", other.kind()),
        }
    }

    /// Get-or-create the named latency histogram.
    pub fn histogram(&self, name: &str) -> Histo {
        let full = self.full(name);
        let mut g = self.metrics.lock();
        match g
            .entry(full.clone())
            .or_insert_with(|| Metric::Histo(Histo::default()))
        {
            Metric::Histo(h) => h.clone(),
            other => panic!("metric '{full}' already registered as {}", other.kind()),
        }
    }

    /// Freeze every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let g = self.metrics.lock();
        let entries = g
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => Value::Counter(c.get()),
                    Metric::Gauge(v) => Value::Gauge(v.get()),
                    Metric::Histo(h) => Value::Histo(h.summary()),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { entries }
    }
}

/// Integer summary of one histogram: count, integer mean, and the
/// p50/p95/p99 bucket upper bounds. All-integer so reports render
/// byte-identically across runs and hosts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistoSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistoSummary {
    fn from(h: &Histogram) -> HistoSummary {
        HistoSummary {
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }

    /// Integer mean (`sum / count`, 0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// One frozen metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    Counter(u64),
    Gauge(i64),
    Histo(HistoSummary),
}

/// A frozen, ordered view of the registry: the epoch report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: BTreeMap<String, Value>,
}

impl Snapshot {
    /// Value of a counter, 0 when absent (absent and never-incremented are
    /// indistinguishable by design — reports stay comparable across
    /// configurations that don't exercise every path).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(Value::Gauge(v)) => *v,
            _ => 0,
        }
    }

    pub fn histogram(&self, name: &str) -> HistoSummary {
        match self.entries.get(name) {
            Some(Value::Histo(h)) => *h,
            _ => HistoSummary::default(),
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter-wise difference `self - earlier` (histograms and gauges
    /// keep `self`'s value): per-window rates from two lifetime snapshots.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(k, v)| {
                let v = match (v, earlier.entries.get(k)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    _ => v.clone(),
                };
                (k.clone(), v)
            })
            .collect();
        Snapshot { entries }
    }

    /// Deterministic text report: one line per metric, sorted by name.
    /// Identical simulations render byte-identical reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                Value::Counter(c) => writeln!(out, "{name} {c}").unwrap(),
                Value::Gauge(g) => writeln!(out, "{name} {g}").unwrap(),
                Value::Histo(h) => writeln!(
                    out,
                    "{name} count={} mean={} p50={} p95={} p99={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99
                )
                .unwrap(),
            }
        }
        out
    }

    /// Like [`Snapshot::render`], but only metrics whose name starts with
    /// `prefix`.
    pub fn render_prefixed(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            if !name.starts_with(prefix) {
                continue;
            }
            match v {
                Value::Counter(c) => writeln!(out, "{name} {c}").unwrap(),
                Value::Gauge(g) => writeln!(out, "{name} {g}").unwrap(),
                Value::Histo(h) => writeln!(
                    out,
                    "{name} count={} mean={} p50={} p95={} p99={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99
                )
                .unwrap(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_registry() {
        let reg = Registry::new();
        let c = reg.counter("a.events");
        c.inc();
        c.add(4);
        // Re-fetching the same name returns the same underlying metric.
        assert_eq!(reg.counter("a.events").get(), 5);
        let g = reg.gauge("a.depth");
        g.set(3);
        g.add(2);
        g.sub(1);
        assert_eq!(reg.gauge("a.depth").get(), 4);
    }

    #[test]
    fn scoped_prefixes_compose() {
        let reg = Registry::new();
        let dev = reg.scoped("blocksim").scoped("dev0");
        dev.counter("retries").add(7);
        assert_eq!(reg.snapshot().counter("blocksim.dev0.retries"), 7);
    }

    #[test]
    fn snapshot_renders_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        let h = reg.histogram("m.lat_ns");
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.first 2");
        assert!(lines[1].starts_with("m.lat_ns count=4 mean=25175 p50="));
        assert_eq!(lines[2], "z.last 1");
        // Rendering twice is byte-identical.
        assert_eq!(text, reg.snapshot().render());
    }

    #[test]
    fn histogram_summary_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = reg.snapshot().histogram("lat");
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 512);
        assert!(s.p99 >= 990);
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn since_diffs_counters_only() {
        let reg = Registry::new();
        let c = reg.counter("n");
        let g = reg.gauge("g");
        c.add(10);
        g.set(5);
        let first = reg.snapshot();
        c.add(7);
        g.set(9);
        let diff = reg.snapshot().since(&first);
        assert_eq!(diff.counter("n"), 7);
        assert_eq!(diff.gauge("g"), 9);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
