//! Synchronization primitives over the simulation runtime: barriers, wait
//! groups and one-shot gates, built on the deterministic channels so they
//! work identically in virtual and real time.

use std::sync::Arc;

use crate::plock::Mutex;

use crate::chan::{Receiver, Sender};
use crate::runtime::Runtime;

/// A reusable barrier for `n` tasks (collective operations: the paper's
/// `dlfs_mount` and `dlfs_sequence` are collectives).
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<BarrierInner>,
}

struct BarrierInner {
    n: usize,
    state: Mutex<BarrierState>,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<Sender<u64>>,
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Barrier").field("n", &self.inner.n).finish()
    }
}

impl Barrier {
    pub fn new(n: usize) -> Barrier {
        assert!(n > 0);
        Barrier {
            inner: Arc::new(BarrierInner {
                n,
                state: Mutex::new(BarrierState {
                    arrived: 0,
                    generation: 0,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    /// Block until all `n` tasks have arrived. Returns true for exactly one
    /// arrival per generation (the "leader", as `std::sync::Barrier` does).
    pub fn wait(&self, rt: &Runtime) -> bool {
        let (tx, rx) = rt.channel::<u64>(None);
        let leader = {
            let mut st = self.inner.state.lock();
            st.arrived += 1;
            if st.arrived == self.inner.n {
                st.arrived = 0;
                st.generation += 1;
                let generation = st.generation;
                for w in st.waiters.drain(..) {
                    let _ = w.send(generation);
                }
                return true;
            }
            st.waiters.push(tx);
            false
        };
        debug_assert!(!leader);
        rx.recv().expect("barrier leader releases waiters");
        false
    }

    /// Generations completed so far.
    pub fn generation(&self) -> u64 {
        self.inner.state.lock().generation
    }
}

/// Counts outstanding work; `wait` blocks until the count returns to zero.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<WgInner>,
}

struct WgInner {
    state: Mutex<WgState>,
}

struct WgState {
    count: usize,
    waiters: Vec<Sender<()>>,
}

impl std::fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitGroup")
            .field("count", &self.inner.state.lock().count)
            .finish()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    pub fn new() -> WaitGroup {
        WaitGroup {
            inner: Arc::new(WgInner {
                state: Mutex::new(WgState {
                    count: 0,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    pub fn add(&self, n: usize) {
        self.inner.state.lock().count += n;
    }

    pub fn done(&self) {
        let mut st = self.inner.state.lock();
        assert!(st.count > 0, "WaitGroup::done without matching add");
        st.count -= 1;
        if st.count == 0 {
            for w in st.waiters.drain(..) {
                let _ = w.send(());
            }
        }
    }

    /// Block until the count reaches zero (returns immediately when zero).
    pub fn wait(&self, rt: &Runtime) {
        let rx: Option<Receiver<()>> = {
            let mut st = self.inner.state.lock();
            if st.count == 0 {
                None
            } else {
                let (tx, rx) = rt.channel::<()>(None);
                st.waiters.push(tx);
                Some(rx)
            }
        };
        if let Some(rx) = rx {
            rx.recv().expect("waitgroup completion");
        }
    }

    pub fn count(&self) -> usize {
        self.inner.state.lock().count
    }
}

/// A one-shot gate: tasks wait until it opens; opening is idempotent.
#[derive(Clone)]
pub struct Gate {
    inner: Arc<GateInner>,
}

struct GateInner {
    state: Mutex<GateState>,
}

struct GateState {
    open: bool,
    waiters: Vec<Sender<()>>,
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate")
            .field("open", &self.inner.state.lock().open)
            .finish()
    }
}

impl Default for Gate {
    fn default() -> Self {
        Self::new()
    }
}

impl Gate {
    pub fn new() -> Gate {
        Gate {
            inner: Arc::new(GateInner {
                state: Mutex::new(GateState {
                    open: false,
                    waiters: Vec::new(),
                }),
            }),
        }
    }

    pub fn open(&self) {
        let mut st = self.inner.state.lock();
        st.open = true;
        for w in st.waiters.drain(..) {
            let _ = w.send(());
        }
    }

    pub fn is_open(&self) -> bool {
        self.inner.state.lock().open
    }

    /// Block until the gate opens (returns immediately if already open).
    pub fn wait(&self, rt: &Runtime) {
        let rx: Option<Receiver<()>> = {
            let mut st = self.inner.state.lock();
            if st.open {
                None
            } else {
                let (tx, rx) = rt.channel::<()>(None);
                st.waiters.push(tx);
                Some(rx)
            }
        };
        if let Some(rx) = rx {
            rx.recv().expect("gate opens");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn barrier_synchronizes_arrivals() {
        let (times, _) = Runtime::simulate(0, |rt| {
            let b = Barrier::new(4);
            let (tx, rx) = rt.channel::<u64>(None);
            let mut handles = Vec::new();
            for i in 0..4u64 {
                let b = b.clone();
                let tx = tx.clone();
                handles.push(rt.spawn(&format!("t{i}"), move |rt| {
                    rt.sleep(Dur::micros(10 * (i + 1)));
                    b.wait(rt);
                    tx.send(rt.now().nanos()).unwrap();
                }));
            }
            drop(tx);
            for h in handles {
                h.join();
            }
            rx.drain()
        });
        // Everyone leaves the barrier at the last arrival (40us).
        assert_eq!(times, vec![40_000; 4]);
    }

    #[test]
    fn barrier_elects_one_leader_per_generation() {
        let (leaders, _) = Runtime::simulate(1, |rt| {
            let b = Barrier::new(3);
            let (tx, rx) = rt.channel::<bool>(None);
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let b = b.clone();
                let tx = tx.clone();
                handles.push(rt.spawn(&format!("t{i}"), move |rt| {
                    for _ in 0..5 {
                        let lead = b.wait(rt);
                        tx.send(lead).unwrap();
                        rt.sleep(Dur::micros(i + 1));
                    }
                }));
            }
            drop(tx);
            for h in handles {
                h.join();
            }
            rx.drain()
        });
        assert_eq!(leaders.len(), 15);
        assert_eq!(
            leaders.iter().filter(|&&l| l).count(),
            5,
            "one leader per round"
        );
    }

    #[test]
    fn waitgroup_waits_for_all() {
        let ((), end) = Runtime::simulate(2, |rt| {
            let wg = WaitGroup::new();
            wg.add(3);
            for i in 0..3u64 {
                let wg = wg.clone();
                rt.spawn(&format!("w{i}"), move |rt| {
                    rt.sleep(Dur::micros(5 * (i + 1)));
                    wg.done();
                });
            }
            wg.wait(rt);
            assert_eq!(wg.count(), 0);
        });
        assert_eq!(end.nanos(), 15_000);
    }

    #[test]
    fn waitgroup_wait_on_zero_is_instant() {
        Runtime::simulate(3, |rt| {
            let wg = WaitGroup::new();
            wg.wait(rt);
            assert_eq!(rt.now().nanos(), 0);
        });
    }

    #[test]
    fn gate_releases_all_waiters() {
        let (times, _) = Runtime::simulate(4, |rt| {
            let g = Gate::new();
            let (tx, rx) = rt.channel::<u64>(None);
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let g = g.clone();
                let tx = tx.clone();
                handles.push(rt.spawn(&format!("t{i}"), move |rt| {
                    g.wait(rt);
                    tx.send(rt.now().nanos()).unwrap();
                }));
            }
            drop(tx);
            rt.sleep(Dur::micros(25));
            assert!(!g.is_open());
            g.open();
            for h in handles {
                h.join();
            }
            rx.drain()
        });
        assert_eq!(times, vec![25_000; 3]);
    }

    #[test]
    fn open_gate_passes_through() {
        Runtime::simulate(5, |rt| {
            let g = Gate::new();
            g.open();
            g.open(); // idempotent
            g.wait(rt);
            assert_eq!(rt.now().nanos(), 0);
        });
    }
}
