//! # simkit — deterministic virtual-time runtime for systems simulation
//!
//! This crate is the execution substrate for the DLFS reproduction. It lets
//! multi-threaded storage-system code (queue pairs, poll loops, copy-thread
//! pools, multi-node clusters) run under a **deterministic virtual clock**:
//! results are exact, reproducible, and independent of the host machine.
//!
//! The same code can also run against real OS threads and the wall clock
//! (see [`Runtime::real`]), which the runnable examples use.
//!
//! ## Pieces
//!
//! - [`runtime::Runtime`] — spawn tasks, sleep/work, channels, time.
//! - [`chan`] — MPMC channels integrated with the scheduler.
//! - [`resource`] — links (bandwidth + latency) and k-channel service
//!   centers used to model NICs and NVMe internals.
//! - [`rng`] — splittable deterministic RNG streams.
//! - [`stats`] — summaries, histograms, throughput meters.
//! - [`time`] — `Time`/`Dur` virtual-time newtypes.
//!
//! ## Example
//!
//! ```
//! use simkit::prelude::*;
//!
//! let (total, end) = Runtime::simulate(42, |rt| {
//!     let (tx, rx) = rt.channel::<u64>(None);
//!     for i in 0..4u64 {
//!         let tx = tx.clone();
//!         rt.spawn(&format!("worker-{i}"), move |rt| {
//!             rt.sleep(Dur::micros(10 * (i + 1)));
//!             tx.send(i).unwrap();
//!         });
//!     }
//!     drop(tx);
//!     let mut sum = 0;
//!     while let Ok(v) = rx.recv() {
//!         sum += v;
//!     }
//!     sum
//! });
//! assert_eq!(total, 6);
//! assert_eq!(end.nanos(), 40_000); // latest worker woke at 40us
//! ```

#![forbid(unsafe_code)]

pub mod chan;
mod mpmc;
pub mod plock;
pub mod resource;
pub mod retry;
pub mod rng;
mod sched;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod time;
pub mod trace;

pub mod runtime;

pub use chan::{Receiver, RecvError, SendError, Sender, TryRecvError};
pub use resource::{Link, Semaphore, Servers};
pub use retry::RetryPolicy;
pub use rng::{fill_deterministic, fnv1a, SplitMix64};
pub use runtime::{JoinHandle, Runtime};
pub use stats::{fmt_bytes, fmt_bytes_rate, fmt_rate, Histogram, Meter, Summary};
pub use sync::{Barrier, Gate, WaitGroup};
pub use telemetry::{Registry, Snapshot};
pub use time::{Dur, Time};
pub use trace::Tracer;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::chan::{Receiver, Sender};
    pub use crate::resource::{Link, Semaphore, Servers};
    pub use crate::retry::RetryPolicy;
    pub use crate::rng::SplitMix64;
    pub use crate::runtime::{JoinHandle, Runtime};
    pub use crate::stats::{Histogram, Meter, Summary};
    pub use crate::sync::{Barrier, Gate, WaitGroup};
    pub use crate::time::{Dur, Time};
}
