//! Poison-free locking primitives over `std::sync`.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so instead of `parking_lot` we carry this thin shim: the same ergonomic
//! API surface (guards without `Result`, `Condvar::wait(&mut guard)`)
//! implemented on the standard library. A poisoned lock — a participant
//! panicking while holding it — propagates the panic to the next locker,
//! which matches the simulator's fail-fast poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion, `parking_lot`-style: `lock()` returns the guard
/// directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can move the std guard out and back without re-entering the lock.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Condition variable paired with [`Mutex`], waiting in place on a
/// `&mut` guard like `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock with guard-returning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read()[2], 3);
    }

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
