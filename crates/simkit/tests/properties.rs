//! Property-based tests for simkit: timeline resources, RNG, statistics.

use proptest::prelude::*;
use simkit::prelude::*;
use simkit::rng::SplitMix64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn link_reservations_never_overlap(
        reqs in prop::collection::vec((0u64..1_000_000, 1u64..100_000), 1..80)
    ) {
        // Whatever order reservations arrive in (possibly out of time
        // order), the wire must never carry two payloads at once and no
        // reservation may start before its requested time.
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let bw = 1e9; // 1 byte per ns
            let link = Link::new(bw, Dur::ZERO);
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            for (now, bytes) in reqs {
                let end = link.reserve(Time(now), bytes).nanos();
                let start = end - bytes; // 1 byte/ns
                assert!(start >= now, "started {start} before requested {now}");
                for &(s, e) in &intervals {
                    assert!(end <= s || e <= start,
                        "overlap: [{start},{end}) vs [{s},{e})");
                }
                intervals.push((start, end));
            }
        });
    }

    #[test]
    fn servers_capacity_respected(
        reqs in prop::collection::vec((0u64..500_000, 1u64..50_000), 1..60),
        k in 1usize..5,
    ) {
        // At any instant, at most k requests may be in service.
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let srv = Servers::new(k);
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            for (now, cost) in &reqs {
                let end = srv.reserve(Time(*now), Dur::nanos(*cost)).nanos();
                let start = end - cost;
                assert!(start >= *now);
                intervals.push((start, end));
            }
            // Sweep: count overlaps at every interval start.
            for &(s, _) in &intervals {
                let live = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
                assert!(live <= k, "{live} concurrent on {k} channels");
            }
        });
    }

    #[test]
    fn rng_shuffle_is_permutation(n in 1usize..500, seed in 0u64..10_000) {
        let mut rng = SplitMix64::new(seed);
        let p = rng.permutation(n);
        let mut seen = vec![false; n];
        for &x in &p {
            prop_assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn summary_mean_between_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn histogram_quantiles_monotone(vals in prop::collection::vec(1u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &vals {
            h.add(v);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        prop_assert_eq!(h.count(), vals.len() as u64);
    }

    #[test]
    fn virtual_sleep_sums_exactly(durs in prop::collection::vec(0u64..100_000, 1..50)) {
        let total: u64 = durs.iter().sum();
        let ((), end) = Runtime::simulate(0, |rt| {
            for &d in &durs {
                rt.sleep(Dur::nanos(d));
            }
        });
        prop_assert_eq!(end.nanos(), total);
    }
}
