//! Randomized property tests for simkit: timeline resources, RNG,
//! statistics. Cases are generated from seeded [`SplitMix64`] streams so
//! failures replay exactly.

use simkit::prelude::*;
use simkit::rng::SplitMix64;
use simkit::time::Time;

const CASES: u64 = 64;

#[test]
fn link_reservations_never_overlap() {
    // Whatever order reservations arrive in (possibly out of time order),
    // the wire must never carry two payloads at once and no reservation may
    // start before its requested time.
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x11AC, case);
        let n = g.range(1, 80) as usize;
        let reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (g.below(1_000_000), g.range(1, 100_000)))
            .collect();
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let bw = 1e9; // 1 byte per ns
            let link = Link::new(bw, Dur::ZERO);
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            for &(now, bytes) in &reqs {
                let end = link.reserve(Time(now), bytes).nanos();
                let start = end - bytes; // 1 byte/ns
                assert!(start >= now, "started {start} before requested {now}");
                for &(s, e) in &intervals {
                    assert!(
                        end <= s || e <= start,
                        "overlap: [{start},{end}) vs [{s},{e})"
                    );
                }
                intervals.push((start, end));
            }
        });
    }
}

#[test]
fn servers_capacity_respected() {
    // At any instant, at most k requests may be in service.
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x5EB5, case);
        let k = g.range(1, 5) as usize;
        let n = g.range(1, 60) as usize;
        let reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (g.below(500_000), g.range(1, 50_000)))
            .collect();
        Runtime::simulate(0, |rt| {
            let _ = rt;
            let srv = Servers::new(k);
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            for (now, cost) in &reqs {
                let end = srv.reserve(Time(*now), Dur::nanos(*cost)).nanos();
                let start = end - cost;
                assert!(start >= *now);
                intervals.push((start, end));
            }
            // Sweep: count overlaps at every interval start.
            for &(s, _) in &intervals {
                let live = intervals.iter().filter(|&&(a, b)| a <= s && s < b).count();
                assert!(live <= k, "{live} concurrent on {k} channels");
            }
        });
    }
}

#[test]
fn rng_shuffle_is_permutation() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x50F1, case);
        let n = g.range(1, 500) as usize;
        let seed = g.below(10_000);
        let mut rng = SplitMix64::new(seed);
        let p = rng.permutation(n);
        let mut seen = vec![false; n];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }
}

#[test]
fn summary_mean_between_min_max() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x5A11, case);
        let n = g.range(1, 200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (g.f64() - 0.5) * 2e6).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        assert!(s.mean() >= s.min() - 1e-9);
        assert!(s.mean() <= s.max() + 1e-9);
        assert!(s.variance() >= 0.0);
        assert_eq!(s.count(), xs.len() as u64);
    }
}

#[test]
fn histogram_quantiles_monotone() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x4157, case);
        let n = g.range(1, 300) as usize;
        let vals: Vec<u64> = (0..n).map(|_| g.range(1, 1_000_000)).collect();
        let mut h = Histogram::new();
        for &v in &vals {
            h.add(v);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q25 <= q50 && q50 <= q99);
        assert_eq!(h.count(), vals.len() as u64);
    }
}

#[test]
fn virtual_sleep_sums_exactly() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x51EE, case);
        let n = g.range(1, 50) as usize;
        let durs: Vec<u64> = (0..n).map(|_| g.below(100_000)).collect();
        let total: u64 = durs.iter().sum();
        let ((), end) = Runtime::simulate(0, |rt| {
            for &d in &durs {
                rt.sleep(Dur::nanos(d));
            }
        });
        assert_eq!(end.nanos(), total);
    }
}
