//! Determinism and stress tests for the virtual-time scheduler.
//!
//! The whole reproduction rests on simulations being replayable: identical
//! seeds must produce identical event orders and identical virtual
//! timestamps across runs (and across machines). These tests run non-trivial
//! task graphs twice and require bit-identical traces.

use simkit::prelude::*;

/// A moderately tangled workload: a pipeline of stages connected by bounded
/// channels, with per-task pseudo-random service times.
fn pipeline_trace(seed: u64) -> (Vec<(u32, u64)>, u64) {
    let (trace, end) = Runtime::simulate(seed, |rt| {
        let (tx_a, rx_a) = rt.channel::<u32>(Some(4));
        let (tx_b, rx_b) = rt.channel::<u32>(Some(4));
        let (tx_out, rx_out) = rt.channel::<(u32, u64)>(None);

        // Stage 1: three producers with jittered inter-arrival times.
        let mut producers = Vec::new();
        for p in 0..3u32 {
            let tx = tx_a.clone();
            let mut rng = rt.rng(100 + p as u64);
            producers.push(rt.spawn(&format!("prod{p}"), move |rt| {
                for i in 0..20u32 {
                    rt.sleep(Dur::nanos(rng.range(100, 5_000)));
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx_a);

        // Stage 2: two transformers with their own service times.
        let mut transformers = Vec::new();
        for t in 0..2u32 {
            let rx = rx_a.clone();
            let tx = tx_b.clone();
            let mut rng = rt.rng(200 + t as u64);
            transformers.push(rt.spawn(&format!("xform{t}"), move |rt| {
                while let Ok(v) = rx.recv() {
                    rt.work(Dur::nanos(rng.range(50, 2_000)));
                    tx.send(v).unwrap();
                }
            }));
        }
        drop(rx_a);
        drop(tx_b);

        // Stage 3: single consumer recording (value, time) pairs.
        let consumer = rt.spawn("consume", move |rt| {
            while let Ok(v) = rx_b.recv() {
                tx_out.send((v, rt.now().nanos())).unwrap();
            }
        });

        for h in producers {
            h.join();
        }
        for h in transformers {
            h.join();
        }
        consumer.join();
        rx_out.drain()
    });
    (trace, end.nanos())
}

#[test]
fn identical_seeds_identical_traces() {
    let (t1, e1) = pipeline_trace(42);
    let (t2, e2) = pipeline_trace(42);
    assert_eq!(t1.len(), 60);
    assert_eq!(t1, t2);
    assert_eq!(e1, e2);
}

#[test]
fn different_seeds_different_traces() {
    let (t1, _) = pipeline_trace(42);
    let (t2, _) = pipeline_trace(43);
    assert_ne!(t1, t2);
}

#[test]
fn many_tasks_stress() {
    // 120 tasks ping-ponging through a shared channel still terminates and
    // is deterministic.
    let run = || {
        let (sum, end) = Runtime::simulate(7, |rt| {
            let (tx, rx) = rt.channel::<u64>(None);
            let mut handles = Vec::new();
            for i in 0..120u64 {
                let tx = tx.clone();
                handles.push(rt.spawn_with(&format!("t{i}"), move |rt| {
                    rt.sleep(Dur::nanos(i * 13 % 977));
                    tx.send(i).unwrap();
                    rt.work(Dur::nanos(i % 53));
                    i
                }));
            }
            drop(tx);
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            for h in handles {
                h.join();
            }
            sum
        });
        (sum, end.nanos())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.0, (0..120).sum::<u64>());
}

#[test]
fn link_contention_is_deterministic() {
    let run = || {
        let (arrivals, _) = Runtime::simulate(1, |rt| {
            let link = Link::new(1e9, Dur::micros(5));
            let (tx, rx) = rt.channel::<(u32, u64)>(None);
            let mut handles = Vec::new();
            for i in 0..8u32 {
                let link = link.clone();
                let tx = tx.clone();
                handles.push(rt.spawn(&format!("xfer{i}"), move |rt| {
                    rt.sleep(Dur::nanos(i as u64 * 100));
                    link.transfer(rt, 64 * 1024);
                    tx.send((i, rt.now().nanos())).unwrap();
                }));
            }
            drop(tx);
            for h in handles {
                h.join();
            }
            rx.drain()
        });
        arrivals
    };
    let a = run();
    assert_eq!(a, run());
    // FIFO: earlier starters finish earlier on a serialized link.
    for w in a.windows(2) {
        assert!(w[0].1 < w[1].1, "{a:?}");
    }
}

#[test]
fn semaphore_queue_depth_pipeline() {
    // Model an SPDK-style queue-depth-bounded submission pipeline and check
    // the completion count and makespan are exactly reproducible.
    let run = || {
        Runtime::simulate(3, |rt| {
            let qd = Semaphore::new(rt, 16);
            let srv = Servers::new(4);
            let mut handles = Vec::new();
            for i in 0..64 {
                let qd = qd.clone();
                let srv = srv.clone();
                handles.push(rt.spawn(&format!("io{i}"), move |rt| {
                    qd.acquire();
                    srv.serve(rt, Dur::micros(10));
                    qd.release();
                }));
            }
            for h in handles {
                h.join();
            }
            rt.now().nanos()
        })
        .0
    };
    let a = run();
    assert_eq!(a, run());
    // 64 requests, 4 channels, 10us each → exactly 160us.
    assert_eq!(a, 160_000);
}
