//! Edge-case coverage for the runtime: nested spawns, channel corner
//! cases, zero-capacity-like behaviour, busy accounting across tasks.

use simkit::chan::TryRecvError;
use simkit::prelude::*;

#[test]
fn nested_spawn_from_spawned_task() {
    let (sum, end) = Runtime::simulate(0, |rt| {
        let h = rt.spawn_with("outer", |rt| {
            let mut inner = Vec::new();
            for i in 0..3u64 {
                inner.push(rt.spawn_with(&format!("inner{i}"), move |rt| {
                    rt.sleep(Dur::micros(i + 1));
                    i * 10
                }));
            }
            inner.into_iter().map(|h| h.join()).sum::<u64>()
        });
        h.join()
    });
    assert_eq!(sum, 30);
    assert_eq!(end.nanos(), 3_000);
}

#[test]
fn try_send_respects_capacity() {
    Runtime::simulate(1, |rt| {
        let (tx, rx) = rt.channel::<u8>(Some(2));
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(3));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        assert_eq!(rx.drain(), vec![2, 3]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    });
}

#[test]
fn send_to_dropped_receiver_fails() {
    Runtime::simulate(2, |rt| {
        let (tx, rx) = rt.channel::<u8>(None);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert_eq!(tx.try_send(2), Err(2));
    });
}

#[test]
fn cloned_receivers_compete_fifo() {
    let (got, _) = Runtime::simulate(3, |rt| {
        let (tx, rx) = rt.channel::<u32>(None);
        let rx2 = rx.clone();
        let a = rt.spawn_with("a", move |_| rx.recv().unwrap());
        let b = rt.spawn_with("b", move |_| rx2.recv().unwrap());
        rt.sleep(Dur::micros(1));
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        (a.join(), b.join())
    });
    // FIFO wake order: first blocked receiver gets the first message.
    assert_eq!(got, (10, 20));
}

#[test]
fn join_after_finish_returns_immediately() {
    Runtime::simulate(4, |rt| {
        let h = rt.spawn_with("quick", |_| 7u8);
        rt.sleep(Dur::millis(1)); // task long finished
        assert!(h.is_finished());
        let t0 = rt.now();
        assert_eq!(h.join(), 7);
        assert_eq!(rt.now(), t0, "join must not advance time");
    });
}

#[test]
fn work_and_sleep_account_separately() {
    let ((busy, total), end) = Runtime::simulate(5, |rt| {
        rt.work(Dur::micros(3));
        rt.sleep(Dur::micros(7));
        let h = rt.spawn_with("w", |rt| {
            rt.work(Dur::micros(11));
        });
        h.join();
        (rt.my_busy(), rt.total_busy())
    });
    assert_eq!(busy, Dur::micros(3));
    assert_eq!(total, Dur::micros(14));
    assert_eq!(end.nanos(), 21_000);
}

#[test]
fn deeply_chained_pipeline_terminates() {
    // 20 stages, each forwarding through a bounded channel.
    let (count, _) = Runtime::simulate(6, |rt| {
        let (first_tx, mut prev_rx) = rt.channel::<u64>(Some(2));
        for s in 0..20 {
            let (tx, rx) = rt.channel::<u64>(Some(2));
            let rx_in = prev_rx;
            rt.spawn(&format!("stage{s}"), move |rt| {
                while let Ok(v) = rx_in.recv() {
                    rt.work(Dur::nanos(50));
                    if tx.send(v + 1).is_err() {
                        break;
                    }
                }
            });
            prev_rx = rx;
        }
        let sink = prev_rx;
        let producer = rt.spawn("producer", move |_| {
            for i in 0..100u64 {
                first_tx.send(i).unwrap();
            }
        });
        let mut n = 0;
        while let Ok(v) = sink.recv() {
            assert!(v >= 20);
            n += 1;
            if n == 100 {
                break;
            }
        }
        producer.join();
        n
    });
    assert_eq!(count, 100);
}

#[test]
fn barrier_reuse_across_many_generations() {
    Runtime::simulate(7, |rt| {
        let b = Barrier::new(2);
        let b2 = b.clone();
        let h = rt.spawn("peer", move |rt| {
            for _ in 0..50 {
                b2.wait(rt);
                rt.sleep(Dur::nanos(10));
            }
        });
        for _ in 0..50 {
            b.wait(rt);
            rt.sleep(Dur::nanos(10));
        }
        h.join();
        assert_eq!(b.generation(), 50);
    });
}

#[test]
fn semaphore_fifo_under_contention() {
    let (order, _) = Runtime::simulate(8, |rt| {
        let sem = Semaphore::new(rt, 1);
        let (tx, rx) = rt.channel::<u64>(None);
        let mut handles = Vec::new();
        for i in 0..5u64 {
            let sem = sem.clone();
            let tx = tx.clone();
            handles.push(rt.spawn(&format!("t{i}"), move |rt| {
                rt.sleep(Dur::nanos(i)); // arrive in id order
                sem.acquire();
                tx.send(i).unwrap();
                rt.sleep(Dur::micros(1));
                sem.release();
            }));
        }
        drop(tx);
        for h in handles {
            h.join();
        }
        rx.drain()
    });
    assert_eq!(order, vec![0, 1, 2, 3, 4], "FIFO admission");
}
