//! The Octopus-like distributed file system: one metadata server + one
//! data region (emulated-NVMe-backed persistent memory) per node.
//!
//! Faithful to the comparison target's relevant properties (paper §IV):
//! RDMA data path, *distributed* metadata requiring cross-node RPC per
//! lookup, and — crucially — no DL-specific batching: every sample read is
//! an individual lookup + RDMA read.

use std::sync::Arc;

use blocksim::{covering_blocks, DeviceConfig, NvmeDevice, NvmeTarget};
use fabric::{Cluster, FabricFault, RpcClient, RpcError, TargetHealth};
use simkit::plock::Mutex;
use simkit::retry::RetryPolicy;
use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Registry, Snapshot};
use simkit::time::Dur;

use crate::meta::{owner_of, LookupReq, LookupResp, MetaEntry, MetaTable, SERVER_LOOKUP_COST};

/// Client-side CPU per read: posting the RDMA read and handling completion.
pub const CLIENT_POST_COST: Dur = Dur::nanos(900);

/// Typed failures of the octofs data/metadata path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OctoError {
    /// The name is not in the namespace.
    NotFound(String),
    /// The metadata owner (and any replica) stayed unreachable through the
    /// retry budget.
    Unavailable { node: u32, attempts: u32 },
    /// The data read kept failing (media errors or transport drops) until
    /// the retry budget ran out.
    ReadFailed { node: u32, attempts: u32 },
}

impl std::fmt::Display for OctoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OctoError::NotFound(name) => write!(f, "no such file: {name}"),
            OctoError::Unavailable { node, attempts } => {
                write!(
                    f,
                    "metadata node {node} unreachable after {attempts} attempt(s)"
                )
            }
            OctoError::ReadFailed { node, attempts } => {
                write!(
                    f,
                    "read from node {node} failed after {attempts} attempt(s)"
                )
            }
        }
    }
}

impl std::error::Error for OctoError {}

/// Deployment knobs for fault-tolerant operation. The defaults keep the
/// baseline byte-identical to the original (single-copy, generous retry):
/// chaos experiments opt into replication to exercise failover.
#[derive(Clone, Debug)]
pub struct OctoConfig {
    /// Retry schedule for data reads.
    pub retry: RetryPolicy,
    /// Retry schedule for one lookup RPC *before* failing over to the
    /// replica metadata server; kept short so failover engages quickly.
    pub rpc_retry: RetryPolicy,
    /// Keep a second copy of data and metadata on `(owner + 1) % nodes`.
    pub replicate: bool,
    /// Consecutive transport failures that open a target's circuit.
    pub health_threshold: u32,
    /// How long an open circuit diverts traffic before a probe is allowed.
    pub health_cooldown: Dur,
}

impl Default for OctoConfig {
    fn default() -> Self {
        OctoConfig {
            retry: RetryPolicy::default(),
            rpc_retry: RetryPolicy {
                max_attempts: 2,
                ..Default::default()
            },
            replicate: false,
            health_threshold: 2,
            health_cooldown: Dur::millis(1),
        }
    }
}

/// RPC/read counters, living under `octofs.*` in the cluster's registry.
struct OctoTelemetry {
    lookups: Counter,
    lookup_rpcs: Counter,
    reads: Counter,
    bytes_read: Counter,
    read_retries: Counter,
    /// Attempts abandoned to a transport timeout (lookup or read).
    timeouts: Counter,
    /// Times a lookup or read switched away from an unhealthy node.
    failovers: Counter,
}

/// A deployed Octopus-like file system across `nodes` nodes.
pub struct OctopusFs {
    cluster: Arc<Cluster>,
    devices: Vec<Arc<NvmeDevice>>,
    servers: Vec<RpcClient<LookupReq, LookupResp>>,
    /// Append cursor per node's data region.
    cursors: Vec<Mutex<u64>>,
    tables: Vec<Arc<Mutex<MetaTable>>>,
    cfg: OctoConfig,
    health: TargetHealth,
    tel: OctoTelemetry,
}

impl std::fmt::Debug for OctopusFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OctopusFs")
            .field("nodes", &self.devices.len())
            .finish()
    }
}

impl OctopusFs {
    /// Deploy over an existing fabric: one metadata server task and one
    /// data device per node.
    pub fn deploy(
        rt: &Runtime,
        cluster: Arc<Cluster>,
        device_cfg: &DeviceConfig,
    ) -> Arc<OctopusFs> {
        OctopusFs::deploy_with(rt, cluster, device_cfg, OctoConfig::default())
    }

    /// Deploy with explicit fault-tolerance knobs (see [`OctoConfig`]).
    pub fn deploy_with(
        rt: &Runtime,
        cluster: Arc<Cluster>,
        device_cfg: &DeviceConfig,
        cfg: OctoConfig,
    ) -> Arc<OctopusFs> {
        let nodes = cluster.len();
        let mut devices = Vec::with_capacity(nodes);
        let mut servers = Vec::with_capacity(nodes);
        let mut tables = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let dev = NvmeDevice::new(device_cfg.clone());
            devices.push(dev);
            let table = Arc::new(Mutex::new(MetaTable::new()));
            tables.push(table.clone());
            let client = fabric::serve::<LookupReq, LookupResp>(
                rt,
                cluster.clone(),
                node,
                &format!("octo-meta-{node}"),
                move |rt, _from, req| {
                    rt.work(SERVER_LOOKUP_COST);
                    LookupResp(table.lock().lookup(&req.0))
                },
            )
            .with_retry(cfg.rpc_retry);
            servers.push(client);
        }
        let scope = cluster.registry().scoped("octofs");
        let health = TargetHealth::new(nodes, cfg.health_threshold, cfg.health_cooldown);
        health.attach_telemetry(&cluster.registry().scoped("octofs.health"));
        Arc::new(OctopusFs {
            tel: OctoTelemetry {
                lookups: scope.counter("lookups"),
                lookup_rpcs: scope.counter("lookup_rpcs"),
                reads: scope.counter("reads"),
                bytes_read: scope.counter("bytes_read"),
                read_retries: scope.counter("read_retries"),
                timeouts: scope.counter("timeouts"),
                failovers: scope.counter("failovers"),
            },
            cluster,
            cursors: (0..nodes).map(|_| Mutex::new(0)).collect(),
            devices,
            servers,
            tables,
            cfg,
            health,
        })
    }

    pub fn nodes(&self) -> usize {
        self.devices.len()
    }

    /// The shared registry (cluster root): `octofs.*` plus `fabric.*`.
    pub fn registry(&self) -> &Registry {
        self.cluster.registry()
    }

    /// Snapshot of the octofs + fabric metrics.
    pub fn metrics(&self) -> Snapshot {
        self.cluster.registry().snapshot()
    }

    /// 512-aligned append allocation on a node's data region.
    fn alloc(&self, node: usize, len: u64) -> u64 {
        let mut cur = self.cursors[node].lock();
        let off = *cur;
        // Keep 512-alignment so RDMA reads map to whole device blocks.
        *cur += len.div_ceil(512) * 512;
        off
    }

    /// Store a file: data appended on the owner node's device, metadata
    /// registered at the owner. With [`OctoConfig::replicate`], a second
    /// copy of both lands on `(owner + 1) % nodes`. Returns the entry.
    /// (Load phase; charged to the device but not network-timed per byte —
    /// the paper's experiments all start after datasets are staged.)
    pub fn store(&self, rt: &Runtime, name: &str, data: &[u8]) -> MetaEntry {
        let nodes = self.nodes();
        let node = owner_of(name, nodes);
        let offset = self.alloc(node, data.len() as u64);
        let dev = &self.devices[node];
        let (slba, nblocks, _) = covering_blocks(offset, data.len() as u64);
        dev.reserve_write(rt.now(), slba, nblocks);
        dev.dma_write(slba, data);
        let replica = if self.cfg.replicate && nodes > 1 {
            let rnode = (node + 1) % nodes;
            let roff = self.alloc(rnode, data.len() as u64);
            let rdev = &self.devices[rnode];
            let (rslba, rnblocks, _) = covering_blocks(roff, data.len() as u64);
            rdev.reserve_write(rt.now(), rslba, rnblocks);
            rdev.dma_write(rslba, data);
            Some((rnode as u32, roff))
        } else {
            None
        };
        let entry = MetaEntry {
            node: node as u32,
            offset,
            len: data.len() as u64,
            replica,
        };
        self.tables[node].lock().insert(name, entry);
        if let Some((rnode, _)) = replica {
            self.tables[rnode as usize].lock().insert(name, entry);
        }
        entry
    }

    /// Register a file's metadata without materializing data or charging
    /// time: for lookup-only experiments (Fig. 10) on huge namespaces.
    /// Replicated deployments mirror the *metadata* to the replica server
    /// (so lookups fail over), but no data copy exists.
    pub fn store_meta_only(&self, name: &str, len: u64) -> MetaEntry {
        let nodes = self.nodes();
        let node = owner_of(name, nodes);
        let offset = self.alloc(node, len);
        let entry = MetaEntry {
            node: node as u32,
            offset,
            len,
            replica: None,
        };
        self.tables[node].lock().insert(name, entry);
        if self.cfg.replicate && nodes > 1 {
            self.tables[(node + 1) % nodes].lock().insert(name, entry);
        }
        entry
    }

    /// Metadata lookup from `client_node`: an RPC to the owner (network
    /// round trip unless the owner is local, in which case only the server
    /// processing is paid). Swallows transport errors into `None`; callers
    /// that must distinguish an absent name from an unreachable namespace
    /// use [`OctopusFs::try_lookup`].
    pub fn lookup(&self, rt: &Runtime, client_node: usize, name: &str) -> Option<MetaEntry> {
        self.try_lookup(rt, client_node, name).ok().flatten()
    }

    /// Fault-aware metadata lookup: retries under the RPC policy and fails
    /// over to the replica metadata server when the owner is down.
    pub fn try_lookup(
        &self,
        rt: &Runtime,
        client_node: usize,
        name: &str,
    ) -> Result<Option<MetaEntry>, OctoError> {
        self.tel.lookups.inc();
        let nodes = self.nodes();
        let owner = owner_of(name, nodes);
        let mut candidates = vec![owner];
        if self.cfg.replicate && nodes > 1 {
            candidates.push((owner + 1) % nodes);
        }
        let mut last_err = OctoError::Unavailable {
            node: owner as u32,
            attempts: 0,
        };
        let total = candidates.len();
        for (i, srv) in candidates.into_iter().enumerate() {
            let has_fallback = i + 1 < total;
            if has_fallback && !self.health.available(srv, rt.now()) {
                // Circuit open: divert to the replica without burning the
                // RPC retry budget on a known-dead server.
                self.tel.failovers.inc();
                continue;
            }
            if srv == client_node {
                // Local: hash-table access in shared memory.
                rt.work(SERVER_LOOKUP_COST);
                self.health.record_ok(srv);
                return Ok(self.tables[srv].lock().lookup(name));
            }
            self.tel.lookup_rpcs.inc();
            match self.servers[srv].try_call(rt, client_node, LookupReq(name.to_string())) {
                Ok(resp) => {
                    self.health.record_ok(srv);
                    return Ok(resp.0);
                }
                Err(RpcError::Timeout { attempts, .. }) => {
                    self.tel.timeouts.inc();
                    self.health.record_failure(srv, rt.now());
                    last_err = OctoError::Unavailable {
                        node: srv as u32,
                        attempts,
                    };
                    if has_fallback {
                        self.tel.failovers.inc();
                    }
                }
            }
        }
        Err(last_err)
    }

    /// Read a whole file into `buf` from `client_node`: lookup + one RDMA
    /// read from the owner's data region. Returns bytes read.
    pub fn read(
        &self,
        rt: &Runtime,
        client_node: usize,
        name: &str,
        buf: &mut [u8],
    ) -> Result<usize, OctoError> {
        let entry = self
            .try_lookup(rt, client_node, name)?
            .ok_or_else(|| OctoError::NotFound(name.to_string()))?;
        self.read_entry(rt, client_node, &entry, buf)?;
        Ok(entry.len as usize)
    }

    /// RDMA-read a located extent (no metadata traffic).
    ///
    /// Device (PM with injected delay) services the access, then the
    /// payload crosses the fabric to the client (RDMA read response); local
    /// reads skip the wire. Failed attempts retry under the deployment's
    /// [`RetryPolicy`] with deterministic backoff; transport failures trip
    /// the target's circuit breaker, and subsequent attempts fail over to
    /// the replica copy when one exists.
    pub fn read_entry(
        &self,
        rt: &Runtime,
        client_node: usize,
        entry: &MetaEntry,
        buf: &mut [u8],
    ) -> Result<(), OctoError> {
        self.tel.reads.inc();
        self.tel.bytes_read.add(entry.len);
        let mut copies = vec![(entry.node as usize, entry.offset)];
        if let Some((rnode, roff)) = entry.replica {
            copies.push((rnode as usize, roff));
        }
        let mut failed = 0u32;
        let mut last_pick: Option<usize> = None;
        loop {
            // Prefer the first copy whose circuit is closed; if every copy
            // looks down, probe the primary anyway (backoff paces us).
            let pick = copies
                .iter()
                .position(|&(n, _)| self.health.available(n, rt.now()))
                .unwrap_or(0);
            if last_pick.is_some_and(|prev| prev != pick) {
                self.tel.failovers.inc();
            }
            last_pick = Some(pick);
            let (node, offset) = copies[pick];
            let dev = &self.devices[node];
            let (slba, nblocks, head) = covering_blocks(offset, entry.len);
            let bytes = nblocks as u64 * blocksim::BLOCK_SIZE;
            rt.work(CLIENT_POST_COST);
            let dev_fault = dev.fault_decide(rt.now(), false);
            let net_fault = if node == client_node {
                FabricFault::Healthy
            } else {
                self.cluster.fault_decide(rt.now(), client_node, node)
            };
            let (ok, t_done) = match net_fault {
                FabricFault::Dropped { detect_after } => {
                    // The RDMA read never happened; the client only learns
                    // after its I/O timeout.
                    (false, rt.now() + detect_after)
                }
                net => {
                    let extra = dev_fault.extra_latency
                        + match net {
                            FabricFault::Delay(d) => d,
                            _ => Dur::ZERO,
                        };
                    let t_dev = dev.reserve_read(rt.now(), slba, nblocks) + extra;
                    let t = if node == client_node {
                        t_dev
                    } else {
                        self.cluster
                            .reserve_transfer(t_dev, node, client_node, bytes)
                    };
                    (dev_fault.status.is_ok(), t)
                }
            };
            let now = rt.now();
            if t_done > now {
                rt.sleep(t_done - now);
            }
            if ok {
                self.health.record_ok(node);
                let n = entry.len as usize;
                let mut block_buf = vec![0u8; bytes as usize];
                dev.dma_read(slba, &mut block_buf);
                buf[..n].copy_from_slice(&block_buf[head..head + n]);
                return Ok(());
            }
            if net_fault.is_dropped() {
                // Only transport losses indict the *target*; media errors
                // are the device's problem and retry in place.
                self.tel.timeouts.inc();
                self.health.record_failure(node, rt.now());
            }
            failed += 1;
            self.tel.read_retries.inc();
            match self.cfg.retry.next_delay(failed) {
                Some(backoff) => {
                    if !backoff.is_zero() {
                        rt.sleep(backoff);
                    }
                }
                None => {
                    return Err(OctoError::ReadFailed {
                        node: node as u32,
                        attempts: failed,
                    })
                }
            }
        }
    }

    /// Device of a node (for verification in tests).
    pub fn device(&self, node: usize) -> &Arc<NvmeDevice> {
        &self.devices[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::FabricConfig;

    fn deploy(rt: &Runtime, nodes: usize) -> Arc<OctopusFs> {
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
        OctopusFs::deploy(rt, cluster, &cfg)
    }

    #[test]
    fn store_then_read_roundtrip() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            let data: Vec<u8> = (0..5000).map(|i| (i * 3 % 256) as u8).collect();
            fs.store(rt, "sample_1", &data);
            let mut out = vec![0u8; 5000];
            let n = fs.read(rt, 0, "sample_1", &mut out).unwrap();
            assert_eq!(n, 5000);
            assert_eq!(out, data);
        });
    }

    #[test]
    fn missing_file_is_not_found() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 2);
            let mut out = vec![0u8; 16];
            assert_eq!(
                fs.read(rt, 0, "nope", &mut out),
                Err(OctoError::NotFound("nope".to_string()))
            );
            assert!(fs.lookup(rt, 0, "nope").is_none());
        });
    }

    #[test]
    fn remote_lookup_costs_a_round_trip() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 2);
            // Find names owned by each node.
            let local_name = (0..100)
                .map(|i| format!("f{i}"))
                .find(|n| owner_of(n, 2) == 0)
                .unwrap();
            let remote_name = (0..100)
                .map(|i| format!("f{i}"))
                .find(|n| owner_of(n, 2) == 1)
                .unwrap();
            fs.store(rt, &local_name, &[1u8; 64]);
            fs.store(rt, &remote_name, &[1u8; 64]);
            let t0 = rt.now();
            fs.lookup(rt, 0, &local_name).unwrap();
            let local = rt.now() - t0;
            let t1 = rt.now();
            fs.lookup(rt, 0, &remote_name).unwrap();
            let remote = rt.now() - t1;
            assert!(
                remote.as_nanos() > local.as_nanos() + 3_000,
                "remote {remote:?} local {local:?}"
            );
        });
    }

    #[test]
    fn data_distributes_across_nodes() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            for i in 0..200 {
                fs.store(rt, &format!("sample_{i:04}"), &[7u8; 256]);
            }
            let with_data = (0..4).filter(|&n| fs.device(n).stats().1 > 0).count();
            assert_eq!(with_data, 4, "all nodes should own some files");
        });
    }

    #[test]
    fn reads_are_parallel_across_clients() {
        // 4 clients reading their own files: total time should be far less
        // than 4x a single client's time.
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            for i in 0..64 {
                fs.store(rt, &format!("s{i}"), &vec![3u8; 4096]);
            }
            let mut handles = Vec::new();
            for c in 0..4usize {
                let fs = fs.clone();
                handles.push(rt.spawn_with(&format!("client{c}"), move |rt| {
                    let mut buf = vec![0u8; 4096];
                    for i in 0..16 {
                        let idx = c * 16 + i;
                        fs.read(rt, c, &format!("s{idx}"), &mut buf).unwrap();
                    }
                    rt.now().nanos()
                }));
            }
            let finishes: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
            let max = *finishes.iter().max().unwrap();
            // A fully serial execution would be ~4x one client's work.
            let serial_estimate = 4 * 16 * 25_000u64; // ~25us per remote read
            assert!(max < serial_estimate, "max {max} vs {serial_estimate}");
        });
    }

    fn deploy_replicated(rt: &Runtime, nodes: usize) -> (Arc<Cluster>, Arc<OctopusFs>) {
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
        let fs = OctopusFs::deploy_with(
            rt,
            cluster.clone(),
            &cfg,
            OctoConfig {
                replicate: true,
                ..Default::default()
            },
        );
        (cluster, fs)
    }

    /// A name owned by `want` in an `n`-node cluster, and the data to match.
    fn name_owned_by(want: usize, n: usize) -> String {
        (0..1000)
            .map(|i| format!("file_{i}"))
            .find(|name| owner_of(name, n) == want)
            .unwrap()
    }

    #[test]
    fn crashed_primary_fails_over_to_replica() {
        Runtime::simulate(0, |rt| {
            let (cluster, fs) = deploy_replicated(rt, 3);
            let name = name_owned_by(1, 3);
            let data: Vec<u8> = (0..3000).map(|i| (i * 11 % 256) as u8).collect();
            fs.store(rt, &name, &data);
            // Node 1 (the primary) crashes before the read and stays down
            // far longer than the whole retry budget.
            cluster.set_faults(
                fabric::FabricFaultInjector::new(5)
                    .with_io_timeout(Dur::micros(30))
                    .with_crash(1, rt.now(), rt.now() + Dur::secs(1)),
            );
            let mut out = vec![0u8; 3000];
            let n = fs.read(rt, 0, &name, &mut out).unwrap();
            assert_eq!(n, 3000);
            assert_eq!(out, data, "replica must serve identical bytes");
            let snap = fs.metrics();
            assert!(snap.counter("octofs.failovers") > 0);
            assert!(snap.counter("octofs.timeouts") > 0);
            assert_eq!(snap.gauge("octofs.health.node1.target_up"), 0);
        });
    }

    #[test]
    fn unreplicated_crash_is_a_typed_error() {
        Runtime::simulate(0, |rt| {
            let cl = Arc::new(Cluster::new(2, FabricConfig::default()));
            let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
            let fs = OctopusFs::deploy(rt, cl.clone(), &cfg);
            let name = name_owned_by(1, 2);
            fs.store(rt, &name, &[9u8; 128]);
            cl.set_faults(
                fabric::FabricFaultInjector::new(6)
                    .with_io_timeout(Dur::micros(20))
                    .with_crash(1, rt.now(), rt.now() + Dur::secs(10)),
            );
            let mut out = vec![0u8; 128];
            match fs.read(rt, 0, &name, &mut out) {
                Err(OctoError::Unavailable { node: 1, attempts }) => {
                    assert!(attempts >= 1);
                }
                other => panic!("expected Unavailable, got {other:?}"),
            }
        });
    }

    #[test]
    fn read_exhaustion_is_a_typed_error() {
        // A device that always fails reads: the retry budget must end in
        // ReadFailed, not a panic.
        Runtime::simulate(0, |rt| {
            let cl = Arc::new(Cluster::new(1, FabricConfig::default()));
            let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
            let fs = OctopusFs::deploy_with(
                rt,
                cl,
                &cfg,
                OctoConfig {
                    retry: RetryPolicy {
                        max_attempts: 4,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let entry = fs.store(rt, "always_bad", &[1u8; 512]);
            fs.device(0)
                .set_faults(blocksim::FaultInjector::new(3).with_read_failures(1_000_000));
            let mut out = vec![0u8; 512];
            assert_eq!(
                fs.read_entry(rt, 0, &entry, &mut out),
                Err(OctoError::ReadFailed {
                    node: 0,
                    attempts: 4
                })
            );
            assert!(fs.metrics().counter("octofs.read_retries") >= 4);
        });
    }
}
