//! The Octopus-like distributed file system: one metadata server + one
//! data region (emulated-NVMe-backed persistent memory) per node.
//!
//! Faithful to the comparison target's relevant properties (paper §IV):
//! RDMA data path, *distributed* metadata requiring cross-node RPC per
//! lookup, and — crucially — no DL-specific batching: every sample read is
//! an individual lookup + RDMA read.

use std::sync::Arc;

use blocksim::{covering_blocks, DeviceConfig, NvmeDevice, NvmeTarget};
use fabric::{Cluster, RpcClient};
use simkit::plock::Mutex;
use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Registry, Snapshot};
use simkit::time::Dur;

use crate::meta::{owner_of, LookupReq, LookupResp, MetaEntry, MetaTable, SERVER_LOOKUP_COST};

/// Client-side CPU per read: posting the RDMA read and handling completion.
pub const CLIENT_POST_COST: Dur = Dur::nanos(900);

/// RPC/read counters, living under `octofs.*` in the cluster's registry.
struct OctoTelemetry {
    lookups: Counter,
    lookup_rpcs: Counter,
    reads: Counter,
    bytes_read: Counter,
    read_retries: Counter,
}

/// A deployed Octopus-like file system across `nodes` nodes.
pub struct OctopusFs {
    cluster: Arc<Cluster>,
    devices: Vec<Arc<NvmeDevice>>,
    servers: Vec<RpcClient<LookupReq, LookupResp>>,
    /// Append cursor per node's data region.
    cursors: Vec<Mutex<u64>>,
    tables: Vec<Arc<Mutex<MetaTable>>>,
    tel: OctoTelemetry,
}

impl std::fmt::Debug for OctopusFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OctopusFs")
            .field("nodes", &self.devices.len())
            .finish()
    }
}

impl OctopusFs {
    /// Deploy over an existing fabric: one metadata server task and one
    /// data device per node.
    pub fn deploy(
        rt: &Runtime,
        cluster: Arc<Cluster>,
        device_cfg: &DeviceConfig,
    ) -> Arc<OctopusFs> {
        let nodes = cluster.len();
        let mut devices = Vec::with_capacity(nodes);
        let mut servers = Vec::with_capacity(nodes);
        let mut tables = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let dev = NvmeDevice::new(device_cfg.clone());
            devices.push(dev);
            let table = Arc::new(Mutex::new(MetaTable::new()));
            tables.push(table.clone());
            let client = fabric::serve::<LookupReq, LookupResp>(
                rt,
                cluster.clone(),
                node,
                &format!("octo-meta-{node}"),
                move |rt, _from, req| {
                    rt.work(SERVER_LOOKUP_COST);
                    LookupResp(table.lock().lookup(&req.0))
                },
            );
            servers.push(client);
        }
        let scope = cluster.registry().scoped("octofs");
        Arc::new(OctopusFs {
            tel: OctoTelemetry {
                lookups: scope.counter("lookups"),
                lookup_rpcs: scope.counter("lookup_rpcs"),
                reads: scope.counter("reads"),
                bytes_read: scope.counter("bytes_read"),
                read_retries: scope.counter("read_retries"),
            },
            cluster,
            cursors: (0..nodes).map(|_| Mutex::new(0)).collect(),
            devices,
            servers,
            tables,
        })
    }

    pub fn nodes(&self) -> usize {
        self.devices.len()
    }

    /// The shared registry (cluster root): `octofs.*` plus `fabric.*`.
    pub fn registry(&self) -> &Registry {
        self.cluster.registry()
    }

    /// Snapshot of the octofs + fabric metrics.
    pub fn metrics(&self) -> Snapshot {
        self.cluster.registry().snapshot()
    }

    /// Store a file: data appended on the owner node's device, metadata
    /// registered at the owner. Returns the entry. (Load phase; charged to
    /// the device but not network-timed per byte — the paper's experiments
    /// all start after datasets are staged.)
    pub fn store(&self, rt: &Runtime, name: &str, data: &[u8]) -> MetaEntry {
        let node = owner_of(name, self.nodes());
        let offset = {
            let mut cur = self.cursors[node].lock();
            let off = *cur;
            // Keep 512-alignment so RDMA reads map to whole device blocks.
            *cur += (data.len() as u64).div_ceil(512) * 512;
            off
        };
        let dev = &self.devices[node];
        let (slba, nblocks, _) = covering_blocks(offset, data.len() as u64);
        dev.reserve_write(rt.now(), slba, nblocks);
        dev.dma_write(slba, data);
        let entry = MetaEntry {
            node: node as u32,
            offset,
            len: data.len() as u64,
        };
        self.tables[node].lock().insert(name, entry);
        entry
    }

    /// Register a file's metadata without materializing data or charging
    /// time: for lookup-only experiments (Fig. 10) on huge namespaces.
    pub fn store_meta_only(&self, name: &str, len: u64) -> MetaEntry {
        let node = owner_of(name, self.nodes());
        let offset = {
            let mut cur = self.cursors[node].lock();
            let off = *cur;
            *cur += len.div_ceil(512) * 512;
            off
        };
        let entry = MetaEntry {
            node: node as u32,
            offset,
            len,
        };
        self.tables[node].lock().insert(name, entry);
        entry
    }

    /// Metadata lookup from `client_node`: an RPC to the owner (network
    /// round trip unless the owner is local, in which case only the server
    /// processing is paid).
    pub fn lookup(&self, rt: &Runtime, client_node: usize, name: &str) -> Option<MetaEntry> {
        self.tel.lookups.inc();
        let owner = owner_of(name, self.nodes());
        if owner == client_node {
            // Local: hash-table access in shared memory.
            rt.work(SERVER_LOOKUP_COST);
            return self.tables[owner].lock().lookup(name);
        }
        self.tel.lookup_rpcs.inc();
        let resp = self.servers[owner].call(rt, client_node, LookupReq(name.to_string()));
        resp.0
    }

    /// Read a whole file into `buf` from `client_node`: lookup + one RDMA
    /// read from the owner's data region. Returns bytes read.
    pub fn read(&self, rt: &Runtime, client_node: usize, name: &str, buf: &mut [u8]) -> Option<usize> {
        let entry = self.lookup(rt, client_node, name)?;
        self.read_entry(rt, client_node, &entry, buf);
        Some(entry.len as usize)
    }

    /// RDMA-read a located extent (no metadata traffic).
    pub fn read_entry(&self, rt: &Runtime, client_node: usize, entry: &MetaEntry, buf: &mut [u8]) {
        let owner = entry.node as usize;
        let dev = &self.devices[owner];
        let (slba, nblocks, head) = covering_blocks(entry.offset, entry.len);
        let bytes = nblocks as u64 * blocksim::BLOCK_SIZE;
        // Device (PM with injected delay) services the access, then the
        // payload crosses the fabric to the client (RDMA read response);
        // local reads skip the wire. Failed commands are retried.
        self.tel.reads.inc();
        self.tel.bytes_read.add(entry.len);
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 8, "device keeps failing reads");
            if attempts > 1 {
                self.tel.read_retries.inc();
            }
            rt.work(CLIENT_POST_COST);
            let fault = dev.fault_decide(false);
            let t_dev = dev.reserve_read(rt.now(), slba, nblocks) + fault.extra_latency;
            let t_done = if owner == client_node {
                t_dev
            } else {
                self.cluster.reserve_transfer(t_dev, owner, client_node, bytes)
            };
            let now = rt.now();
            if t_done > now {
                rt.sleep(t_done - now);
            }
            if fault.status.is_ok() {
                break;
            }
        }
        let n = entry.len as usize;
        let mut block_buf = vec![0u8; bytes as usize];
        dev.dma_read(slba, &mut block_buf);
        buf[..n].copy_from_slice(&block_buf[head..head + n]);
    }

    /// Device of a node (for verification in tests).
    pub fn device(&self, node: usize) -> &Arc<NvmeDevice> {
        &self.devices[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::FabricConfig;
    

    fn deploy(rt: &Runtime, nodes: usize) -> Arc<OctopusFs> {
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
        OctopusFs::deploy(rt, cluster, &cfg)
    }

    #[test]
    fn store_then_read_roundtrip() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            let data: Vec<u8> = (0..5000).map(|i| (i * 3 % 256) as u8).collect();
            fs.store(rt, "sample_1", &data);
            let mut out = vec![0u8; 5000];
            let n = fs.read(rt, 0, "sample_1", &mut out).unwrap();
            assert_eq!(n, 5000);
            assert_eq!(out, data);
        });
    }

    #[test]
    fn missing_file_is_none() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 2);
            let mut out = vec![0u8; 16];
            assert!(fs.read(rt, 0, "nope", &mut out).is_none());
        });
    }

    #[test]
    fn remote_lookup_costs_a_round_trip() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 2);
            // Find names owned by each node.
            let local_name = (0..100)
                .map(|i| format!("f{i}"))
                .find(|n| owner_of(n, 2) == 0)
                .unwrap();
            let remote_name = (0..100)
                .map(|i| format!("f{i}"))
                .find(|n| owner_of(n, 2) == 1)
                .unwrap();
            fs.store(rt, &local_name, &[1u8; 64]);
            fs.store(rt, &remote_name, &[1u8; 64]);
            let t0 = rt.now();
            fs.lookup(rt, 0, &local_name).unwrap();
            let local = rt.now() - t0;
            let t1 = rt.now();
            fs.lookup(rt, 0, &remote_name).unwrap();
            let remote = rt.now() - t1;
            assert!(
                remote.as_nanos() > local.as_nanos() + 3_000,
                "remote {remote:?} local {local:?}"
            );
        });
    }

    #[test]
    fn data_distributes_across_nodes() {
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            for i in 0..200 {
                fs.store(rt, &format!("sample_{i:04}"), &[7u8; 256]);
            }
            let with_data = (0..4)
                .filter(|&n| fs.device(n).stats().1 > 0)
                .count();
            assert_eq!(with_data, 4, "all nodes should own some files");
        });
    }

    #[test]
    fn reads_are_parallel_across_clients() {
        // 4 clients reading their own files: total time should be far less
        // than 4x a single client's time.
        Runtime::simulate(0, |rt| {
            let fs = deploy(rt, 4);
            for i in 0..64 {
                fs.store(rt, &format!("s{i}"), &vec![3u8; 4096]);
            }
            let mut handles = Vec::new();
            for c in 0..4usize {
                let fs = fs.clone();
                handles.push(rt.spawn_with(&format!("client{c}"), move |rt| {
                    let mut buf = vec![0u8; 4096];
                    for i in 0..16 {
                        let idx = c * 16 + i;
                        fs.read(rt, c, &format!("s{idx}"), &mut buf).unwrap();
                    }
                    rt.now().nanos()
                }));
            }
            let finishes: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
            let max = *finishes.iter().max().unwrap();
            // A fully serial execution would be ~4x one client's work.
            let serial_estimate = 4 * 16 * 25_000u64; // ~25us per remote read
            assert!(max < serial_estimate, "max {max} vs {serial_estimate}");
        });
    }
}
