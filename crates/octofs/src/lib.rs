//! # octofs — an Octopus-like RDMA distributed file system (baseline)
//!
//! The comparison target the DLFS paper uses for its multi-node
//! experiments: an RDMA-enabled distributed file system with
//! hash-partitioned metadata and direct RDMA reads of remote
//! persistent-memory/NVMe data. Its two properties that matter for the
//! paper's results are preserved exactly:
//!
//! 1. every sample lookup is a cross-node RPC to the metadata owner
//!    (no client-side replica of the namespace), and
//! 2. there is no small-sample batching: one lookup + one RDMA read per
//!    sample.

//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use blocksim::DeviceConfig;
//! use fabric::{Cluster, FabricConfig};
//! use octofs::OctopusFs;
//! use simkit::prelude::*;
//!
//! let ((), _) = Runtime::simulate(7, |rt| {
//!     let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
//!     let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
//!     let fs = OctopusFs::deploy(rt, cluster, &cfg);
//!     fs.store(rt, "sample_1", b"payload");
//!     let mut buf = [0u8; 7];
//!     fs.read(rt, 0, "sample_1", &mut buf).unwrap();
//!     assert_eq!(&buf, b"payload");
//! });
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod meta;

pub use cluster::{OctoConfig, OctoError, OctopusFs, CLIENT_POST_COST};
pub use meta::{owner_of, MetaEntry, MetaTable, SERVER_LOOKUP_COST};
