//! Octopus-style distributed metadata: files are hash-partitioned across
//! server nodes; a lookup is a *self-identified RPC* to the owner node
//! (clients compute the owner from the name hash, but still must cross the
//! network for the actual entry — the paper's "frequent inter-node
//! communication for sample lookup").

use std::collections::HashMap;

use simkit::rng::fnv1a;
use simkit::time::Dur;

/// Location of a file's data within the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaEntry {
    /// Node owning the data.
    pub node: u32,
    /// Byte offset on the owner's device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Replica location `(node, offset)` when the cluster keeps a second
    /// copy; reads fail over here when the primary's circuit is open.
    pub replica: Option<(u32, u64)>,
}

/// Which node owns a file's metadata (and, in our layout, its data).
pub fn owner_of(name: &str, nodes: usize) -> usize {
    (fnv1a(name.as_bytes()) % nodes as u64) as usize
}

/// Per-node metadata table.
#[derive(Debug, Default)]
pub struct MetaTable {
    entries: HashMap<String, MetaEntry>,
}

/// CPU cost of one server-side metadata operation: request parse, hash
/// lookup, permission walk, reply construction. Octopus (ATC'17) reports
/// metadata operation latencies in the 10-20 us band; we charge the
/// server-side share here (the fabric adds the rest).
pub const SERVER_LOOKUP_COST: Dur = Dur::micros(14);

impl MetaTable {
    pub fn new() -> MetaTable {
        MetaTable::default()
    }

    pub fn insert(&mut self, name: &str, entry: MetaEntry) -> Option<MetaEntry> {
        self.entries.insert(name.to_string(), entry)
    }

    pub fn lookup(&self, name: &str) -> Option<MetaEntry> {
        self.entries.get(name).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// RPC request: look up one name.
#[derive(Clone, Debug)]
pub struct LookupReq(pub String);

/// RPC response.
#[derive(Clone, Copy, Debug)]
pub struct LookupResp(pub Option<MetaEntry>);

impl fabric::WireSize for LookupReq {
    fn wire_bytes(&self) -> u64 {
        self.0.len() as u64 + 24
    }
}

impl fabric::WireSize for LookupResp {
    fn wire_bytes(&self) -> u64 {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        for n in [1usize, 2, 5, 16] {
            for i in 0..100 {
                let name = format!("s{i}");
                let o = owner_of(&name, n);
                assert!(o < n);
                assert_eq!(o, owner_of(&name, n));
            }
        }
    }

    #[test]
    fn owners_spread() {
        let n = 8;
        let mut hist = vec![0; n];
        for i in 0..8000 {
            hist[owner_of(&format!("sample_{i:06}"), n)] += 1;
        }
        for &h in &hist {
            assert!((500..1500).contains(&h), "{hist:?}");
        }
    }

    #[test]
    fn table_insert_lookup() {
        let mut t = MetaTable::new();
        let e = MetaEntry {
            node: 3,
            offset: 4096,
            len: 512,
            replica: None,
        };
        assert!(t.insert("a", e).is_none());
        assert_eq!(t.lookup("a"), Some(e));
        assert_eq!(t.lookup("b"), None);
        assert_eq!(t.len(), 1);
    }
}
