//! The storage backend abstraction the benchmarks and the TF-style input
//! pipeline run against: one implementation per evaluated system (DLFS,
//! Ext4, Octopus), each reading random samples the way the paper's
//! microbenchmarks drive it.

use std::sync::Arc;

use dlfs::{DlfsInstance, DlfsIo, ReadRequest};
use kernsim::Ext4Fs;
use octofs::OctopusFs;
use simkit::rng::SplitMix64;
use simkit::runtime::Runtime;
use simkit::telemetry::Snapshot;
use simkit::time::Dur;

/// One delivered training sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    pub id: u32,
    pub bytes: Vec<u8>,
}

/// A per-reader-thread handle to a storage system under test.
pub trait ReaderBackend: Send {
    /// Start an epoch with the collective seed; returns how many samples
    /// this reader will deliver.
    fn begin_epoch(&mut self, rt: &Runtime, seed: u64, epoch: u64) -> usize;

    /// Deliver up to `n` samples; `None` once the epoch is exhausted.
    fn next_batch(&mut self, rt: &Runtime, n: usize) -> Option<Vec<Sample>>;

    /// Human-readable system name.
    fn label(&self) -> &'static str;

    /// Snapshot of this backend's telemetry registry, under the unified
    /// naming scheme (`dlfs.io.*`, `blocksim.dev*`, `kernsim.vfs.*`,
    /// `octofs.*`, `fabric.*`). Backends without instrumentation return an
    /// empty snapshot.
    fn metrics(&self) -> Snapshot {
        Snapshot::default()
    }
}

// ---------------------------------------------------------------- DLFS --

/// DLFS through `dlfs_sequence` + `dlfs_bread`.
pub struct DlfsBackend {
    io: DlfsIo,
    /// Computation injected into the poll loop (Fig. 7b); normally zero.
    pub inject_compute: Dur,
}

impl DlfsBackend {
    pub fn new(fs: &DlfsInstance, reader: usize) -> DlfsBackend {
        DlfsBackend {
            io: fs.io(reader),
            inject_compute: Dur::ZERO,
        }
    }

    /// Like [`DlfsBackend::new`], recording engine telemetry into `reg`
    /// (several backends may share one registry; counters then aggregate
    /// across readers).
    pub fn with_registry(
        fs: &DlfsInstance,
        reader: usize,
        reg: &simkit::telemetry::Registry,
    ) -> DlfsBackend {
        DlfsBackend {
            io: fs.io_with_registry(reader, reg),
            inject_compute: Dur::ZERO,
        }
    }

    pub fn io(&self) -> &DlfsIo {
        &self.io
    }
}

impl ReaderBackend for DlfsBackend {
    fn begin_epoch(&mut self, rt: &Runtime, seed: u64, epoch: u64) -> usize {
        self.io.sequence(rt, seed, epoch)
    }

    fn next_batch(&mut self, rt: &Runtime, n: usize) -> Option<Vec<Sample>> {
        let req = ReadRequest::batch(n).inject_compute(self.inject_compute);
        match self.io.submit(rt, &req) {
            Ok(batch) => Some(
                batch
                    .into_copied()
                    .into_iter()
                    .map(|(id, bytes)| Sample { id, bytes })
                    .collect(),
            ),
            Err(dlfs::DlfsError::EpochExhausted) => None,
            Err(e) => panic!("dlfs submit failed: {e}"),
        }
    }

    fn label(&self) -> &'static str {
        "DLFS"
    }

    fn metrics(&self) -> Snapshot {
        self.io.metrics()
    }
}

/// DLFS without opportunistic batching: synchronous `dlfs_read` per sample
/// over an application-side random order (the paper's DLFS-Base).
pub struct DlfsBaseBackend {
    io: DlfsIo,
    order: Vec<u32>,
    cursor: usize,
    reader: usize,
    readers: usize,
    total: usize,
}

impl DlfsBaseBackend {
    pub fn new(fs: &DlfsInstance, reader: usize) -> DlfsBaseBackend {
        DlfsBaseBackend {
            io: fs.io(reader),
            order: Vec::new(),
            cursor: 0,
            reader,
            readers: fs.readers(),
            total: fs.dir.len(),
        }
    }
}

impl ReaderBackend for DlfsBaseBackend {
    fn begin_epoch(&mut self, _rt: &Runtime, seed: u64, epoch: u64) -> usize {
        // Same global permutation on every reader; this reader takes its
        // strided slice.
        let global = dlfs::full_random_order(self.total, seed, epoch);
        self.order = global
            .into_iter()
            .skip(self.reader)
            .step_by(self.readers)
            .collect();
        self.cursor = 0;
        self.order.len()
    }

    fn next_batch(&mut self, rt: &Runtime, n: usize) -> Option<Vec<Sample>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + n).min(self.order.len());
        let mut out = Vec::with_capacity(end - self.cursor);
        for &id in &self.order[self.cursor..end] {
            let bytes = self.io.read_by_id(rt, id).expect("dlfs_read");
            out.push(Sample { id, bytes });
        }
        self.cursor = end;
        Some(out)
    }

    fn label(&self) -> &'static str {
        "DLFS-Base"
    }

    fn metrics(&self) -> Snapshot {
        self.io.metrics()
    }
}

// ---------------------------------------------------------------- Ext4 --

/// The kernel-FS baseline: open + pread + close per sample against this
/// reader's locally staged shard.
pub struct Ext4Backend {
    fs: Arc<Ext4Fs>,
    files: Vec<(u32, String, u64)>, // (id, path, size)
    order: Vec<u32>,                // indices into files
    cursor: usize,
}

impl Ext4Backend {
    pub fn new(
        fs: Arc<Ext4Fs>,
        staged: Vec<(u32, String)>,
        sizes: impl Fn(u32) -> u64,
    ) -> Ext4Backend {
        let files = staged
            .into_iter()
            .map(|(id, path)| {
                let size = sizes(id);
                (id, path, size)
            })
            .collect();
        Ext4Backend {
            fs,
            files,
            order: Vec::new(),
            cursor: 0,
        }
    }
}

impl ReaderBackend for Ext4Backend {
    fn begin_epoch(&mut self, _rt: &Runtime, seed: u64, epoch: u64) -> usize {
        let mut rng = SplitMix64::derive(seed, epoch.wrapping_add(0xE47));
        self.order = rng.permutation(self.files.len());
        self.cursor = 0;
        self.order.len()
    }

    fn next_batch(&mut self, rt: &Runtime, n: usize) -> Option<Vec<Sample>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + n).min(self.order.len());
        let mut out = Vec::with_capacity(end - self.cursor);
        for &fi in &self.order[self.cursor..end] {
            let (id, path, size) = &self.files[fi as usize];
            let fd = self.fs.open(rt, path).expect("open staged file");
            let mut buf = vec![0u8; *size as usize];
            let got = self.fs.pread(rt, fd, 0, &mut buf).expect("pread");
            debug_assert_eq!(got, buf.len());
            self.fs.close(rt, fd).expect("close");
            out.push(Sample {
                id: *id,
                bytes: buf,
            });
        }
        self.cursor = end;
        Some(out)
    }

    fn label(&self) -> &'static str {
        "Ext4"
    }

    fn metrics(&self) -> Snapshot {
        self.fs.metrics()
    }
}

// ------------------------------------------------------------- Octopus --

/// The Octopus-like baseline: lookup RPC + RDMA read per sample.
///
/// `with_client_cache` enables an extension the real Octopus lacks: a
/// client-side metadata cache, so repeat lookups (later epochs) skip the
/// RPC. Safe for DL training because the namespace is immutable after
/// staging; used by the `ext_octopus_cache` experiment to ask how much of
/// DLFS's advantage a cached Octopus would recover.
pub struct OctoBackend {
    fs: Arc<OctopusFs>,
    client_node: usize,
    names: Vec<(u32, String, u64)>,
    order: Vec<u32>,
    cursor: usize,
    meta_cache: Option<kernsim::lru::LruMap<u32, octofs::MetaEntry>>,
    /// (hits, misses) of the client cache.
    pub cache_stats: (u64, u64),
}

impl OctoBackend {
    /// `names` is this reader's shard of (id, name) pairs.
    pub fn new(
        fs: Arc<OctopusFs>,
        client_node: usize,
        names: Vec<(u32, String)>,
        sizes: impl Fn(u32) -> u64,
    ) -> OctoBackend {
        let names = names
            .into_iter()
            .map(|(id, name)| {
                let s = sizes(id);
                (id, name, s)
            })
            .collect();
        OctoBackend {
            fs,
            client_node,
            names,
            order: Vec::new(),
            cursor: 0,
            meta_cache: None,
            cache_stats: (0, 0),
        }
    }

    /// Enable the client-side metadata cache extension.
    pub fn with_client_cache(mut self, entries: usize) -> OctoBackend {
        self.meta_cache = Some(kernsim::lru::LruMap::new(entries.max(1)));
        self
    }
}

impl ReaderBackend for OctoBackend {
    fn begin_epoch(&mut self, _rt: &Runtime, seed: u64, epoch: u64) -> usize {
        let mut rng = SplitMix64::derive(seed, epoch.wrapping_add(0x0C70));
        self.order = rng.permutation(self.names.len());
        self.cursor = 0;
        self.order.len()
    }

    fn next_batch(&mut self, rt: &Runtime, n: usize) -> Option<Vec<Sample>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + n).min(self.order.len());
        let mut out = Vec::with_capacity(end - self.cursor);
        for &fi in &self.order[self.cursor..end] {
            let (id, name, size) = &self.names[fi as usize];
            let mut buf = vec![0u8; *size as usize];
            match &mut self.meta_cache {
                Some(cache) => {
                    // Extension path: cached metadata skips the lookup RPC.
                    let entry = match cache.get(&fi).copied() {
                        Some(e) => {
                            self.cache_stats.0 += 1;
                            // Local hash probe cost only.
                            rt.work(simkit::time::Dur::nanos(120));
                            e
                        }
                        None => {
                            self.cache_stats.1 += 1;
                            let e = self
                                .fs
                                .lookup(rt, self.client_node, name)
                                .expect("octopus lookup");
                            cache.insert(fi, e);
                            e
                        }
                    };
                    self.fs
                        .read_entry(rt, self.client_node, &entry, &mut buf)
                        .expect("octopus read");
                }
                None => {
                    self.fs
                        .read(rt, self.client_node, name, &mut buf)
                        .expect("octopus read");
                }
            }
            out.push(Sample {
                id: *id,
                bytes: buf,
            });
        }
        self.cursor = end;
        Some(out)
    }

    fn label(&self) -> &'static str {
        "Octopus"
    }

    fn metrics(&self) -> Snapshot {
        self.fs.metrics()
    }
}
