//! A stub of the HPC backend parallel file system (Lustre/GPFS-class).
//!
//! DLFS stages datasets *from* the PFS at `dlfs_mount` time (paper §III).
//! The stub is an in-memory named object store with shared aggregate
//! bandwidth and a per-operation latency — the two properties that matter
//! for staging time. It is deliberately good at large sequential reads and
//! (implicitly) bad at small random ones: every operation pays the fixed
//! latency.

use std::collections::HashMap;
use std::sync::Arc;

use simkit::plock::Mutex;
use simkit::resource::Link;
use simkit::runtime::Runtime;
use simkit::time::Dur;

/// Shared parallel file system handle.
#[derive(Clone)]
pub struct Pfs {
    objects: Arc<Mutex<HashMap<String, Arc<Vec<u8>>>>>,
    /// Aggregate bandwidth shared by all clients.
    link: Link,
    /// Fixed metadata/RPC latency per operation.
    op_latency: Dur,
}

impl std::fmt::Debug for Pfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pfs")
            .field("objects", &self.objects.lock().len())
            .finish()
    }
}

impl Pfs {
    /// `bytes_per_sec` aggregate bandwidth, `op_latency` per request.
    pub fn new(bytes_per_sec: f64, op_latency: Dur) -> Pfs {
        Pfs {
            objects: Arc::new(Mutex::new(HashMap::new())),
            link: Link::new(bytes_per_sec, Dur::ZERO),
            op_latency,
        }
    }

    /// A Lustre-ish default: 20 GB/s aggregate, 500 us per op.
    pub fn hpc_default() -> Pfs {
        Pfs::new(20e9, Dur::micros(500))
    }

    /// The bandwidth link (to hand to `dlfs::MountOptions.pfs`).
    pub fn link(&self) -> Link {
        self.link.clone()
    }

    /// Store an object (untimed; dataset generation).
    pub fn put_untimed(&self, name: &str, data: Vec<u8>) {
        self.objects.lock().insert(name.to_string(), Arc::new(data));
    }

    /// Timed write.
    pub fn put(&self, rt: &Runtime, name: &str, data: Vec<u8>) {
        rt.sleep(self.op_latency);
        self.link.transfer(rt, data.len() as u64);
        self.put_untimed(name, data);
    }

    /// Timed whole-object read.
    pub fn get(&self, rt: &Runtime, name: &str) -> Option<Arc<Vec<u8>>> {
        rt.sleep(self.op_latency);
        let obj = self.objects.lock().get(name).cloned()?;
        self.link.transfer(rt, obj.len() as u64);
        Some(obj)
    }

    /// Untimed read (verification).
    pub fn get_untimed(&self, name: &str) -> Option<Arc<Vec<u8>>> {
        self.objects.lock().get(name).cloned()
    }

    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        Runtime::simulate(0, |rt| {
            let pfs = Pfs::new(1e9, Dur::micros(100));
            pfs.put(rt, "a", vec![5u8; 1000]);
            let got = pfs.get(rt, "a").unwrap();
            assert_eq!(got.len(), 1000);
            assert!(pfs.get(rt, "missing").is_none());
        });
    }

    #[test]
    fn ops_pay_latency_and_bandwidth() {
        Runtime::simulate(0, |rt| {
            let pfs = Pfs::new(1e9, Dur::micros(100));
            pfs.put_untimed("big", vec![0u8; 10_000_000]);
            let t0 = rt.now();
            pfs.get(rt, "big").unwrap();
            let elapsed = rt.now() - t0;
            // 100us latency + 10MB at 1GB/s = 10ms.
            assert!(elapsed >= Dur::millis(10), "{elapsed:?}");
            assert!(elapsed < Dur::millis(11), "{elapsed:?}");
        });
    }

    #[test]
    fn bandwidth_is_shared() {
        Runtime::simulate(0, |rt| {
            let pfs = Pfs::new(1e9, Dur::ZERO);
            for i in 0..4 {
                pfs.put_untimed(&format!("o{i}"), vec![0u8; 5_000_000]);
            }
            let mut handles = Vec::new();
            for i in 0..4 {
                let pfs = pfs.clone();
                handles.push(rt.spawn(&format!("c{i}"), move |rt| {
                    pfs.get(rt, &format!("o{i}")).unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            // 20 MB total at 1 GB/s shared: no faster than 20 ms.
            assert!(rt.now().nanos() >= 20_000_000, "{}", rt.now());
        });
    }
}
