//! # dlio — the deep-learning I/O substrate around DLFS
//!
//! Everything the evaluation needs that is not a storage system itself:
//!
//! - [`sizedist`] — sample-size distributions calibrated to the paper's
//!   Fig. 1 (ImageNet p75 ≈ 147 KB, IMDB p75 ≈ 1.6 KB);
//! - [`formats`] — real TFRecord and CIFAR-binary container codecs,
//!   including the record index DLFS uses for sample-level access;
//! - [`pfs`] — a parallel-file-system stub datasets are staged from;
//! - [`dataset`] — deterministic dataset generation + staging helpers for
//!   every system under test;
//! - [`backend`] — the `ReaderBackend` trait with DLFS / DLFS-Base / Ext4
//!   / Octopus implementations driving each system the way the paper's
//!   microbenchmarks do;
//! - [`pipeline`] — a tf.data-style input pipeline (shuffle buffer,
//!   batching, prefetch) for the Fig. 12 framework experiments.

//! ## Example: the Fig. 1 size distributions
//!
//! ```
//! use dlio::SizeDist;
//!
//! let p75 = SizeDist::imagenet().quantile(1, 20_000, 0.75);
//! assert!((100_000..200_000).contains(&p75)); // paper: "less than 147 KB"
//! let p75 = SizeDist::imdb().quantile(1, 20_000, 0.75);
//! assert!((1_000..2_500).contains(&p75)); // paper: "less than 1.6 KB"
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod container;
pub mod dataset;
pub mod formats;
pub mod pfs;
pub mod pipeline;
pub mod sizedist;

pub use backend::{DlfsBackend, DlfsBaseBackend, Ext4Backend, OctoBackend, ReaderBackend, Sample};
pub use container::TfRecordDataset;
pub use dataset::{
    generate, shard_of, stage_ext4, stage_ext4_untimed, stage_octopus, HierarchicalSource,
};
pub use formats::{
    crc32c, masked_crc, tfrecord_index, tfrecord_read, tfrecord_write, CifarGeometry,
};
pub use pfs::Pfs;
pub use pipeline::{shuffle_quality, InputPipeline, PipelineCosts, ShuffleBuffer};
pub use sizedist::SizeDist;
