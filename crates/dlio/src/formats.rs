//! On-disk dataset container formats.
//!
//! The paper (§II-B) discusses why preprocessed container formats
//! (TFRecord, the CIFAR binary format) don't solve the random-small-read
//! problem: they are read sequentially through a bounded shuffle buffer,
//! which only partially shuffles. We implement both formats for real so the
//! pipeline experiments and the partial-shuffle demonstration run against
//! the genuine article.

/// CRC-32C (Castagnoli), as used by TFRecord framing.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// TFRecord's masked CRC.
pub fn masked_crc(data: &[u8]) -> u32 {
    let crc = crc32c(data);
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Errors from container parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    Truncated,
    BadLengthCrc,
    BadDataCrc,
    BadGeometry(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated => write!(f, "record truncated"),
            FormatError::BadLengthCrc => write!(f, "length CRC mismatch"),
            FormatError::BadDataCrc => write!(f, "data CRC mismatch"),
            FormatError::BadGeometry(m) => write!(f, "bad geometry: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Serialize records into TFRecord framing:
/// `u64 length | u32 masked_crc(length) | data | u32 masked_crc(data)`.
pub fn tfrecord_write(records: &[&[u8]]) -> Vec<u8> {
    let total: usize = records.iter().map(|r| r.len() + 16).sum();
    let mut out = Vec::with_capacity(total);
    for r in records {
        let len = (r.len() as u64).to_le_bytes();
        out.extend_from_slice(&len);
        out.extend_from_slice(&masked_crc(&len).to_le_bytes());
        out.extend_from_slice(r);
        out.extend_from_slice(&masked_crc(r).to_le_bytes());
    }
    out
}

/// Iterate TFRecord frames, verifying CRCs.
pub fn tfrecord_read(mut buf: &[u8]) -> Result<Vec<Vec<u8>>, FormatError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 12 {
            return Err(FormatError::Truncated);
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&buf[..8]);
        let len = u64::from_le_bytes(len_bytes) as usize;
        let len_crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if len_crc != masked_crc(&len_bytes) {
            return Err(FormatError::BadLengthCrc);
        }
        if buf.len() < 12 + len + 4 {
            return Err(FormatError::Truncated);
        }
        let data = &buf[12..12 + len];
        let data_crc = u32::from_le_bytes(buf[12 + len..12 + len + 4].try_into().unwrap());
        if data_crc != masked_crc(data) {
            return Err(FormatError::BadDataCrc);
        }
        out.push(data.to_vec());
        buf = &buf[12 + len + 4..];
    }
    Ok(out)
}

/// Byte offsets of each record's *data* within a TFRecord buffer, without
/// copying — what DLFS's sample-level directory indexes ("we are able to
/// have direct access to any samples in a TFRecord file").
pub fn tfrecord_index(buf: &[u8]) -> Result<Vec<(u64, u64)>, FormatError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < 12 {
            return Err(FormatError::Truncated);
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&buf[pos..pos + 8]);
        let len = u64::from_le_bytes(len_bytes) as usize;
        if buf.len() - pos < 12 + len + 4 {
            return Err(FormatError::Truncated);
        }
        out.push(((pos + 12) as u64, len as u64));
        pos += 12 + len + 4;
    }
    Ok(out)
}

/// CIFAR-10 style binary format: fixed-size records, `1 label byte +
/// payload` each.
#[derive(Clone, Copy, Debug)]
pub struct CifarGeometry {
    pub payload: usize,
}

impl CifarGeometry {
    /// The real CIFAR-10 geometry (3072-byte images).
    pub fn cifar10() -> CifarGeometry {
        CifarGeometry { payload: 3072 }
    }

    pub fn record_len(&self) -> usize {
        self.payload + 1
    }

    pub fn write(&self, records: &[(u8, &[u8])]) -> Result<Vec<u8>, FormatError> {
        let mut out = Vec::with_capacity(records.len() * self.record_len());
        for (label, data) in records {
            if data.len() != self.payload {
                return Err(FormatError::BadGeometry(format!(
                    "payload {} != {}",
                    data.len(),
                    self.payload
                )));
            }
            out.push(*label);
            out.extend_from_slice(data);
        }
        Ok(out)
    }

    pub fn read(&self, buf: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, FormatError> {
        if !buf.len().is_multiple_of(self.record_len()) {
            return Err(FormatError::BadGeometry(format!(
                "buffer {} not a multiple of record {}",
                buf.len(),
                self.record_len()
            )));
        }
        Ok(buf
            .chunks_exact(self.record_len())
            .map(|c| (c[0], c[1..].to_vec()))
            .collect())
    }

    /// Offset/len of record `i`'s payload.
    pub fn index(&self, i: usize) -> (u64, u64) {
        ((i * self.record_len() + 1) as u64, self.payload as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vector: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // "123456789"
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn tfrecord_roundtrip() {
        let recs: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 100 + i * 7]).collect();
        let refs: Vec<&[u8]> = recs.iter().map(|r| r.as_slice()).collect();
        let buf = tfrecord_write(&refs);
        let back = tfrecord_read(&buf).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn tfrecord_detects_corruption() {
        let buf = tfrecord_write(&[b"hello world"]);
        let mut bad = buf.to_vec();
        bad[14] ^= 0xFF; // flip a data byte
        assert_eq!(tfrecord_read(&bad), Err(FormatError::BadDataCrc));
        let mut bad_len = buf.to_vec();
        bad_len[0] ^= 0x01;
        assert_eq!(tfrecord_read(&bad_len), Err(FormatError::BadLengthCrc));
        assert_eq!(tfrecord_read(&buf[..5]), Err(FormatError::Truncated));
    }

    #[test]
    fn tfrecord_index_points_at_payloads() {
        let recs: Vec<Vec<u8>> = (0..5).map(|i| vec![0xA0 + i as u8; 50]).collect();
        let refs: Vec<&[u8]> = recs.iter().map(|r| r.as_slice()).collect();
        let buf = tfrecord_write(&refs);
        let idx = tfrecord_index(&buf).unwrap();
        assert_eq!(idx.len(), 5);
        for (i, &(off, len)) in idx.iter().enumerate() {
            assert_eq!(len, 50);
            assert_eq!(&buf[off as usize..(off + len) as usize], recs[i].as_slice());
        }
    }

    #[test]
    fn cifar_roundtrip_and_geometry() {
        let g = CifarGeometry { payload: 16 };
        let a = [1u8; 16];
        let b = [2u8; 16];
        let buf = g.write(&[(3, &a), (7, &b)]).unwrap();
        assert_eq!(buf.len(), 34);
        let back = g.read(&buf).unwrap();
        assert_eq!(back[0], (3, a.to_vec()));
        assert_eq!(back[1], (7, b.to_vec()));
        let (off, len) = g.index(1);
        assert_eq!((off, len), (18, 16));
        assert!(g.write(&[(0, &[0u8; 5])]).is_err());
        assert!(g.read(&buf[..10]).is_err());
    }

    #[test]
    fn cifar10_is_3073_bytes_per_record() {
        assert_eq!(CifarGeometry::cifar10().record_len(), 3073);
    }
}
