//! Dataset generation and staging onto each storage system.

use std::sync::Arc;

use dlfs::{SampleSource, SyntheticSource};
use kernsim::Ext4Fs;
use octofs::OctopusFs;
use simkit::runtime::Runtime;

use crate::sizedist::SizeDist;

/// Generate a deterministic synthetic dataset with sizes drawn from `dist`.
pub fn generate(seed: u64, count: usize, dist: &SizeDist) -> SyntheticSource {
    SyntheticSource::new(seed, dist.sizes(seed ^ 0x5a5a, count))
}

/// An ImageNet-style hierarchical dataset: samples named
/// `class_<c>/img_<i>.jpg` across `classes` class directories (round-robin
/// assignment). Staging this on ext4 exercises nested directories — one
/// leaf-block namespace per class instead of one giant flat directory.
#[derive(Clone, Debug)]
pub struct HierarchicalSource {
    inner: SyntheticSource,
    classes: usize,
}

impl HierarchicalSource {
    pub fn new(seed: u64, count: usize, classes: usize, dist: &SizeDist) -> HierarchicalSource {
        assert!(classes > 0);
        HierarchicalSource {
            inner: generate(seed, count, dist),
            classes,
        }
    }

    pub fn classes(&self) -> usize {
        self.classes
    }

    pub fn class_of(&self, id: u32) -> usize {
        id as usize % self.classes
    }

    /// Expected payload (verification).
    pub fn expected(&self, id: u32) -> Vec<u8> {
        self.inner.expected(id)
    }
}

impl SampleSource for HierarchicalSource {
    fn count(&self) -> usize {
        self.inner.count()
    }

    fn name(&self, id: u32) -> String {
        format!("class_{:04}/img_{id:08}.jpg", self.class_of(id))
    }

    fn size(&self, id: u32) -> u64 {
        self.inner.size(id)
    }

    fn fill(&self, id: u32, buf: &mut [u8]) {
        self.inner.fill(id, buf)
    }
}

/// Shard assignment used by the local-read baselines (Ext4): sample `id`
/// belongs to reader `id % readers`, matching how multi-node training jobs
/// pre-partition file lists.
pub fn shard_of(id: u32, readers: usize) -> usize {
    id as usize % readers
}

/// Stage reader `r`'s shard of the dataset into a local ext4 file system
/// (file-per-sample under `/data`, as the paper's Ext4 baseline reads
/// datasets). Returns the staged (id, path) pairs.
pub fn stage_ext4(
    rt: &Runtime,
    fs: &Arc<Ext4Fs>,
    source: &dyn SampleSource,
    reader: usize,
    readers: usize,
) -> Vec<(u32, String)> {
    fs.mkdir_p("/data").expect("mkdir /data");
    let mut staged = Vec::new();
    let mut buf = Vec::new();
    for id in 0..source.count() as u32 {
        if shard_of(id, readers) != reader {
            continue;
        }
        let path = format!("/data/{}", source.name(id));
        if let Some(parent) = path.rsplit_once('/').map(|(p, _)| p) {
            if parent != "/data" {
                fs.mkdir_p(parent).expect("mkdir class dir");
            }
        }
        buf.resize(source.size(id) as usize, 0);
        source.fill(id, &mut buf);
        fs.create_with_size(rt, &path, &buf).expect("stage file");
        staged.push((id, path));
    }
    // Benchmarks measure cold reads, as after a fresh staging + job start.
    fs.drop_caches();
    staged
}

/// Untimed variant of [`stage_ext4`] for benchmark setup: identical
/// on-device state, zero virtual time.
pub fn stage_ext4_untimed(
    fs: &Arc<Ext4Fs>,
    source: &dyn SampleSource,
    reader: usize,
    readers: usize,
) -> Vec<(u32, String)> {
    fs.mkdir_p("/data").expect("mkdir /data");
    let mut staged = Vec::new();
    let mut buf = Vec::new();
    for id in 0..source.count() as u32 {
        if shard_of(id, readers) != reader {
            continue;
        }
        let path = format!("/data/{}", source.name(id));
        if let Some(parent) = path.rsplit_once('/').map(|(p, _)| p) {
            if parent != "/data" {
                fs.mkdir_p(parent).expect("mkdir class dir");
            }
        }
        buf.resize(source.size(id) as usize, 0);
        source.fill(id, &mut buf);
        fs.create_untimed(&path, &buf).expect("stage file");
        staged.push((id, path));
    }
    fs.drop_caches();
    staged
}

/// Stage the whole dataset into the Octopus-like file system (its hash
/// placement decides the owner node). Returns (id, name) pairs.
pub fn stage_octopus(
    rt: &Runtime,
    fs: &Arc<OctopusFs>,
    source: &dyn SampleSource,
) -> Vec<(u32, String)> {
    let mut staged = Vec::new();
    let mut buf = Vec::new();
    for id in 0..source.count() as u32 {
        let name = source.name(id);
        buf.resize(source.size(id) as usize, 0);
        source.fill(id, &mut buf);
        fs.store(rt, &name, &buf);
        staged.push((id, name));
    }
    staged
}

#[cfg(test)]
mod tests {
    use super::*;
    use blocksim::{DeviceConfig, NvmeDevice};
    use fabric::{Cluster, FabricConfig};
    use kernsim::{FsOptions, KernelCosts};

    use simkit::time::Dur;

    #[test]
    fn generate_is_deterministic() {
        let d = SizeDist::Uniform(100, 200);
        let a = generate(1, 50, &d);
        let b = generate(1, 50, &d);
        assert_eq!(a.count(), 50);
        for id in 0..50u32 {
            assert_eq!(a.size(id), b.size(id));
            assert_eq!(a.expected(id), b.expected(id));
        }
    }

    #[test]
    fn ext4_staging_roundtrip() {
        Runtime::simulate(0, |rt| {
            let dev = NvmeDevice::new(DeviceConfig::optane(128 << 20));
            let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
            let source = generate(2, 40, &SizeDist::Fixed(2048));
            let staged = stage_ext4(rt, &fs, &source, 0, 2);
            assert_eq!(staged.len(), 20); // half the shard
            for (id, path) in &staged {
                let fd = fs.open(rt, path).unwrap();
                let mut out = vec![0u8; 2048];
                assert_eq!(fs.pread(rt, fd, 0, &mut out).unwrap(), 2048);
                assert_eq!(out, source.expected(*id));
                fs.close(rt, fd).unwrap();
            }
        });
    }

    #[test]
    fn octopus_staging_roundtrip() {
        Runtime::simulate(0, |rt| {
            let cluster = Arc::new(Cluster::new(2, FabricConfig::default()));
            let cfg = DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10));
            let octo = OctopusFs::deploy(rt, cluster, &cfg);
            let source = generate(3, 30, &SizeDist::Fixed(900));
            let staged = stage_octopus(rt, &octo, &source);
            assert_eq!(staged.len(), 30);
            let mut out = vec![0u8; 900];
            for (id, name) in &staged {
                octo.read(rt, 0, name, &mut out).unwrap();
                assert_eq!(out, source.expected(*id));
            }
        });
    }

    #[test]
    fn shards_partition() {
        let readers = 4;
        let mut counts = vec![0; readers];
        for id in 0..100u32 {
            counts[shard_of(id, readers)] += 1;
        }
        assert_eq!(counts.iter().sum::<i32>(), 100);
        assert!(counts.iter().all(|&c| c == 25));
    }
}
