//! A `tf.data`-style input pipeline (paper §IV-E: "we have enabled
//! TensorFlow on top of DLFS, Octopus and Ext4 by designing a customized
//! TensorFlow API").
//!
//! Two pieces:
//!
//! * [`ShuffleBuffer`] — the bounded shuffle TensorFlow applies to
//!   sequentially-read container files (TFRecord). Its partial-shuffle
//!   weakness is exactly the paper's §II-B argument for sample-level
//!   random access; `shuffle_quality` quantifies it.
//! * [`InputPipeline`] — framework ingestion over a [`ReaderBackend`]: a
//!   producer task pulls batches from storage, charges per-sample
//!   framework overhead (tensor conversion/dispatch), and prefetches into
//!   a bounded queue the trainer consumes (Fig. 12's *-TF measurements).

use simkit::chan::Receiver;
use simkit::rng::SplitMix64;
use simkit::runtime::Runtime;
use simkit::time::Dur;

use crate::backend::{ReaderBackend, Sample};

/// TensorFlow-ish fixed-size shuffle buffer over a sequential stream.
#[derive(Debug)]
pub struct ShuffleBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    rng: SplitMix64,
}

impl<T> ShuffleBuffer<T> {
    pub fn new(capacity: usize, seed: u64) -> ShuffleBuffer<T> {
        assert!(capacity > 0);
        ShuffleBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            rng: SplitMix64::derive(seed, 0x5481),
        }
    }

    /// Push the next stream element; returns an output element once the
    /// buffer is full (reservoir-style draw, as tf.data does).
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
            return None;
        }
        let i = self.rng.below(self.capacity as u64) as usize;
        Some(std::mem::replace(&mut self.buf[i], item))
    }

    /// Drain the residue at end of stream (random order).
    pub fn finish(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        while !self.buf.is_empty() {
            let i = self.rng.below(self.buf.len() as u64) as usize;
            out.push(self.buf.swap_remove(i));
        }
        out
    }

    /// Shuffle an entire sequence through the buffer.
    pub fn shuffle_stream(capacity: usize, seed: u64, items: Vec<T>) -> Vec<T> {
        let mut sb = ShuffleBuffer::new(capacity, seed);
        let mut out = Vec::with_capacity(items.len());
        for it in items {
            if let Some(o) = sb.push(it) {
                out.push(o);
            }
        }
        out.extend(sb.finish());
        out
    }
}

/// Quantify shuffle quality as the mean normalized displacement of
/// elements from their input positions (1.0 ≈ fully shuffled, → 0 for a
/// nearly-sequential output). The paper: "if the size of the shuffle
/// buffer is not large enough, the learner only obtains partially shuffled
/// samples".
pub fn shuffle_quality(input_len: usize, output_positions: &[u32]) -> f64 {
    assert_eq!(input_len, output_positions.len());
    let n = input_len as f64;
    let mean_disp: f64 = output_positions
        .iter()
        .enumerate()
        .map(|(out_pos, &in_pos)| (out_pos as f64 - in_pos as f64).abs())
        .sum::<f64>()
        / n;
    // A uniform random permutation has mean displacement n/3.
    (mean_disp / (n / 3.0)).min(1.0)
}

/// Framework-side ingestion costs.
#[derive(Clone, Debug)]
pub struct PipelineCosts {
    /// Per-sample framework overhead (graph op dispatch, tensor wrap).
    pub per_sample: Dur,
    /// Per-byte decode/convert bandwidth (bytes/s); 0 disables.
    pub decode_bytes_per_sec: f64,
}

impl Default for PipelineCosts {
    fn default() -> Self {
        PipelineCosts {
            per_sample: Dur::nanos(500),
            decode_bytes_per_sec: 20e9,
        }
    }
}

/// A running input pipeline: background producer + bounded prefetch queue.
pub struct InputPipeline {
    rx: Receiver<Vec<Sample>>,
    label: &'static str,
}

impl std::fmt::Debug for InputPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputPipeline")
            .field("label", &self.label)
            .finish()
    }
}

impl InputPipeline {
    /// Launch the pipeline: `backend` is moved into a producer task that
    /// runs one epoch, batching `batch` samples and keeping up to
    /// `prefetch` batches in flight.
    pub fn launch(
        rt: &Runtime,
        mut backend: Box<dyn ReaderBackend>,
        seed: u64,
        epoch: u64,
        batch: usize,
        prefetch: usize,
        costs: PipelineCosts,
    ) -> InputPipeline {
        let label = backend.label();
        let (tx, rx) = rt.channel::<Vec<Sample>>(Some(prefetch.max(1)));
        rt.spawn(&format!("pipeline-{label}"), move |rt| {
            backend.begin_epoch(rt, seed, epoch);
            while let Some(samples) = backend.next_batch(rt, batch) {
                // Framework ingestion cost per element.
                for s in &samples {
                    rt.work(costs.per_sample);
                    if costs.decode_bytes_per_sec > 0.0 {
                        rt.work(Dur::for_bytes(
                            s.bytes.len() as u64,
                            costs.decode_bytes_per_sec,
                        ));
                    }
                }
                if tx.send(samples).is_err() {
                    break; // consumer gone
                }
            }
        });
        InputPipeline { rx, label }
    }

    /// Next prefetched batch (blocks the trainer in virtual time).
    pub fn next(&self) -> Option<Vec<Sample>> {
        self.rx.recv().ok()
    }

    pub fn label(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_buffer_emits_everything_once() {
        let items: Vec<u32> = (0..1000).collect();
        let out = ShuffleBuffer::shuffle_stream(64, 7, items.clone());
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, items);
        assert_ne!(out, items, "should not be identity");
    }

    #[test]
    fn small_buffer_partially_shuffles_large_buffer_fully() {
        let n = 20_000usize;
        let items: Vec<u32> = (0..n as u32).collect();
        let small = ShuffleBuffer::shuffle_stream(100, 3, items.clone());
        let big = ShuffleBuffer::shuffle_stream(n, 3, items.clone());
        let q_small = shuffle_quality(n, &small);
        let q_big = shuffle_quality(n, &big);
        // The paper's partial-shuffle problem, quantified.
        assert!(q_small < 0.15, "small buffer too good: {q_small}");
        assert!(q_big > 0.8, "full buffer too weak: {q_big}");
    }

    #[test]
    fn shuffle_quality_extremes() {
        let identity: Vec<u32> = (0..1000).collect();
        assert!(shuffle_quality(1000, &identity) < 1e-9);
        let reversed: Vec<u32> = (0..1000).rev().collect();
        assert!(shuffle_quality(1000, &reversed) > 0.9);
    }

    #[test]
    fn seeded_shuffle_deterministic() {
        let items: Vec<u32> = (0..500).collect();
        let a = ShuffleBuffer::shuffle_stream(50, 9, items.clone());
        let b = ShuffleBuffer::shuffle_stream(50, 9, items.clone());
        let c = ShuffleBuffer::shuffle_stream(50, 10, items);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
