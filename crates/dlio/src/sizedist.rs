//! Sample-size distributions (paper Fig. 1).
//!
//! "The ImageNet dataset consists of many small samples ... about 75% of
//! samples are less than 147 KB. ... In the case of the IMDB dataset, 75%
//! of samples are less than 1.6 KB." Both are well fit by log-normals; the
//! presets below are calibrated so the 75th percentiles match the paper's
//! numbers.

use simkit::rng::SplitMix64;

/// A distribution over sample sizes in bytes.
#[derive(Clone, Debug)]
pub enum SizeDist {
    /// Every sample exactly `bytes` (the paper's microbenchmark sweeps).
    Fixed(u64),
    /// Log-normal with parameters of the underlying normal, clamped.
    LogNormal {
        mu: f64,
        sigma: f64,
        min: u64,
        max: u64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform(u64, u64),
}

/// z-score of the 75th percentile of a standard normal.
const Z75: f64 = 0.674_489_75;

impl SizeDist {
    /// ImageNet-like: 75% of samples below 147 KB, mean ≈ 115 KB.
    pub fn imagenet() -> SizeDist {
        let p75 = 147_000f64;
        let sigma = 1.0;
        SizeDist::LogNormal {
            mu: p75.ln() - Z75 * sigma,
            sigma,
            min: 2_048,
            max: 4 << 20,
        }
    }

    /// IMDB-like: 75% of samples below 1.6 KB.
    pub fn imdb() -> SizeDist {
        let p75 = 1_600f64;
        let sigma = 0.8;
        SizeDist::LogNormal {
            mu: p75.ln() - Z75 * sigma,
            sigma,
            min: 128,
            max: 64 << 10,
        }
    }

    /// Draw one size.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            SizeDist::Fixed(b) => b,
            SizeDist::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => (rng.lognormal(mu, sigma).round() as u64).clamp(min, max),
            SizeDist::Uniform(lo, hi) => rng.range(lo, hi + 1),
        }
    }

    /// Draw `n` sizes from a deterministic stream.
    pub fn sizes(&self, seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::derive(seed, 0x512e);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Empirical CDF at the given byte values (Fig. 1 regeneration).
    pub fn cdf(&self, seed: u64, n: usize, at: &[u64]) -> Vec<f64> {
        let mut sizes = self.sizes(seed, n);
        sizes.sort_unstable();
        at.iter()
            .map(|&x| {
                let idx = sizes.partition_point(|&s| s <= x);
                idx as f64 / n as f64
            })
            .collect()
    }

    /// Empirical quantile (e.g. 0.75).
    pub fn quantile(&self, seed: u64, n: usize, q: f64) -> u64 {
        let mut sizes = self.sizes(seed, n);
        sizes.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0) * n as f64) as usize).min(n - 1);
        sizes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_p75_matches_paper() {
        let p75 = SizeDist::imagenet().quantile(1, 50_000, 0.75);
        // Paper: "about 75% of samples are less than 147 KB".
        assert!((120_000..175_000).contains(&p75), "ImageNet p75 = {p75}");
    }

    #[test]
    fn imdb_p75_matches_paper() {
        let p75 = SizeDist::imdb().quantile(1, 50_000, 0.75);
        assert!((1_300..1_900).contains(&p75), "IMDB p75 = {p75}");
    }

    #[test]
    fn fixed_and_uniform() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(SizeDist::Fixed(512).sample(&mut rng), 512);
        for _ in 0..100 {
            let v = SizeDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn clamping_applies() {
        let d = SizeDist::LogNormal {
            mu: 20.0, // enormous
            sigma: 0.1,
            min: 100,
            max: 1000,
        };
        let mut rng = SplitMix64::new(2);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut rng), 1000);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = SizeDist::imagenet();
        let cdf = d.cdf(3, 10_000, &[1_000, 10_000, 100_000, 1_000_000, 10_000_000]);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!(cdf[0] >= 0.0 && *cdf.last().unwrap() <= 1.0);
        assert!((cdf[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_sizes() {
        let d = SizeDist::imdb();
        assert_eq!(d.sizes(9, 100), d.sizes(9, 100));
        assert_ne!(d.sizes(9, 100), d.sizes(10, 100));
    }
}
