//! TFRecord containers as DLFS datasets (paper §III-B1).
//!
//! Preprocessed datasets often ship as large batched container files
//! (TFRecord) rather than a file per sample. The paper's sample-level
//! directory indexes *records inside* the container: "we are able to have
//! direct access to any samples in a TFRecord file. Note that there is
//! also an entry taking by the batched file for file-oriented access."
//!
//! [`TfRecordDataset`] wraps an inner per-sample dataset into genuine
//! TFRecord container bytes (length/CRC framing), acts as the mountable
//! [`SampleSource`] whose "samples" are the containers (file-oriented
//! access), and derives the record-level [`SampleDirectory`] whose entries
//! point at each record's payload inside the staged containers.

use std::sync::Arc;

use dlfs::{DirectoryBuilder, SampleDirectory, SampleSource};

use crate::formats::{tfrecord_index, tfrecord_write};

/// A dataset packaged as TFRecord containers.
#[derive(Clone)]
pub struct TfRecordDataset {
    /// Fully framed container bytes.
    containers: Arc<Vec<Vec<u8>>>,
    /// Per record: (container idx, payload offset within container, len).
    records: Arc<Vec<(u32, u64, u64)>>,
    /// Record names, for the record-level directory.
    record_names: Arc<Vec<String>>,
}

impl std::fmt::Debug for TfRecordDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TfRecordDataset")
            .field("containers", &self.containers.len())
            .field("records", &self.records.len())
            .finish()
    }
}

impl TfRecordDataset {
    /// Package `inner`'s samples into containers of `per_container` records
    /// (in sample-id order, as preprocessing pipelines write them).
    pub fn package(inner: &dyn SampleSource, per_container: usize) -> TfRecordDataset {
        assert!(per_container > 0);
        let mut containers = Vec::new();
        let mut records = Vec::new();
        let mut record_names = Vec::new();
        let n = inner.count();
        let mut id = 0u32;
        while (id as usize) < n {
            let cidx = containers.len() as u32;
            let end = (id as usize + per_container).min(n) as u32;
            let payloads: Vec<Vec<u8>> = (id..end)
                .map(|i| {
                    let mut buf = vec![0u8; inner.size(i) as usize];
                    inner.fill(i, &mut buf);
                    buf
                })
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let bytes = tfrecord_write(&refs);
            let index = tfrecord_index(&bytes).expect("self-produced container parses");
            debug_assert_eq!(index.len(), payloads.len());
            for (k, &(off, len)) in index.iter().enumerate() {
                records.push((cidx, off, len));
                record_names.push(inner.name(id + k as u32));
            }
            containers.push(bytes);
            id = end;
        }
        TfRecordDataset {
            containers: Arc::new(containers),
            records: Arc::new(records),
            record_names: Arc::new(record_names),
        }
    }

    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Raw container bytes (verification).
    pub fn container_bytes(&self, c: u32) -> &[u8] {
        &self.containers[c as usize]
    }

    /// Expected payload of a record (verification).
    pub fn record_payload(&self, r: u32) -> &[u8] {
        let (c, off, len) = self.records[r as usize];
        &self.containers[c as usize][off as usize..(off + len) as usize]
    }

    pub fn record_name(&self, r: u32) -> &str {
        &self.record_names[r as usize]
    }

    /// Build the record-level directory over a *mounted* container
    /// directory: record entries point inside the containers wherever the
    /// mount placed them. Record names hash into the directory's trees
    /// independently of that placement.
    pub fn record_directory(
        &self,
        container_dir: &SampleDirectory,
    ) -> Result<Arc<SampleDirectory>, dlfs::DlfsError> {
        assert_eq!(
            container_dir.len(),
            self.containers.len(),
            "directory does not match this dataset's containers"
        );
        let mut b = DirectoryBuilder::new(container_dir.storage_nodes(), self.records.len())?;
        for (r, &(c, off, len)) in self.records.iter().enumerate() {
            let ce = container_dir.entry(c);
            b.add(
                r as u32,
                &self.record_names[r],
                ce.nid(),
                ce.offset() + off,
                len,
            )?;
        }
        Ok(Arc::new(b.finish()?))
    }
}

impl SampleSource for TfRecordDataset {
    fn count(&self) -> usize {
        self.containers.len()
    }

    fn name(&self, id: u32) -> String {
        format!("tfrecord_{id:06}.tfrecord")
    }

    fn size(&self, id: u32) -> u64 {
        self.containers[id as usize].len() as u64
    }

    fn fill(&self, id: u32, buf: &mut [u8]) {
        buf.copy_from_slice(&self.containers[id as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::tfrecord_read;
    use dlfs::SyntheticSource;

    fn dataset() -> (SyntheticSource, TfRecordDataset) {
        let inner = SyntheticSource::new(3, (0..250).map(|i| 200 + (i % 7) * 90).collect());
        let ds = TfRecordDataset::package(&inner, 40);
        (inner, ds)
    }

    #[test]
    fn packaging_counts() {
        let (inner, ds) = dataset();
        assert_eq!(ds.record_count(), inner.count());
        assert_eq!(ds.container_count(), 250usize.div_ceil(40));
    }

    #[test]
    fn containers_are_valid_tfrecord() {
        let (inner, ds) = dataset();
        let mut r = 0u32;
        for c in 0..ds.container_count() as u32 {
            let recs = tfrecord_read(ds.container_bytes(c)).expect("valid CRCs");
            for payload in recs {
                assert_eq!(payload, inner.expected(r));
                r += 1;
            }
        }
        assert_eq!(r as usize, inner.count());
    }

    #[test]
    fn record_index_points_at_payloads() {
        let (inner, ds) = dataset();
        for r in 0..ds.record_count() as u32 {
            assert_eq!(ds.record_payload(r), inner.expected(r).as_slice());
            assert_eq!(ds.record_name(r), inner.name(r));
        }
    }
}
