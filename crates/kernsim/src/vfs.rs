//! The VFS/syscall layer: `open`/`pread`/`close`/`create` with dentry,
//! inode and page caches, charging the kernel-path costs along the way.
//!
//! This is the "Ext4" baseline of the paper: every sample read pays syscall
//! transitions, path resolution against on-disk directory blocks, inode
//! loads from the on-disk inode table, page-cache management, block-layer
//! bio handling, an interrupt + context switch per I/O, and a
//! copy-to-user — the stack of Fig. 2(b).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use blocksim::NvmeTarget;
use simkit::plock::Mutex;
use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Histo, Registry, Snapshot};

use crate::blockio::BlockLayer;
use crate::ext4::inode::INODE_SIZE;
use crate::ext4::{Ext4Meta, FsError};
use crate::lru::LruMap;
use crate::pagecache::PageCache;
use crate::params::{KernelCosts, PAGE_SIZE};

/// Pseudo-inode under which inode-table pages are cached.
const INODE_TABLE_KEY: u64 = 1;

/// File descriptor handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

/// Tuning knobs for a mounted file system.
#[derive(Clone, Debug)]
pub struct FsOptions {
    pub page_cache_bytes: u64,
    pub dcache_entries: usize,
    pub icache_entries: usize,
    pub max_inodes: u64,
}

impl Default for FsOptions {
    fn default() -> Self {
        FsOptions {
            page_cache_bytes: 128 << 20,
            dcache_entries: 65_536,
            icache_entries: 32_768,
            max_inodes: 2_000_000,
        }
    }
}

/// Per-fd state: the inode plus the end of the last read, for the
/// sequential-readahead heuristic.
#[derive(Clone, Copy, Debug)]
struct OpenFile {
    ino: u64,
    last_end: u64,
}

/// Per-syscall telemetry handles, living under `kernsim.vfs.*`.
struct VfsTelemetry {
    syscalls: Counter,
    opens: Counter,
    preads: Counter,
    closes: Counter,
    creates: Counter,
    bytes_read: Counter,
    pread_ns: Histo,
}

impl VfsTelemetry {
    fn new(reg: &Registry) -> VfsTelemetry {
        let reg = reg.scoped("kernsim.vfs");
        VfsTelemetry {
            syscalls: reg.counter("syscalls"),
            opens: reg.counter("opens"),
            preads: reg.counter("preads"),
            closes: reg.counter("closes"),
            creates: reg.counter("creates"),
            bytes_read: reg.counter("bytes_read"),
            pread_ns: reg.histogram("pread_ns"),
        }
    }
}

/// A mounted ext4-like file system over one block device.
pub struct Ext4Fs {
    costs: KernelCosts,
    block: BlockLayer,
    meta: Mutex<Ext4Meta>,
    pcache: Mutex<PageCache>,
    dcache: Mutex<LruMap<String, u64>>,
    icache: Mutex<LruMap<u64, ()>>,
    fds: Mutex<HashMap<u64, OpenFile>>, // fd -> open state
    next_fd: AtomicU64,
    /// Hint used for lock-contention cost modelling.
    active_threads: AtomicUsize,
    registry: Registry,
    tel: VfsTelemetry,
}

impl std::fmt::Debug for Ext4Fs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ext4Fs")
            .field("inodes", &self.meta.lock().inode_count())
            .finish()
    }
}

impl Ext4Fs {
    /// Format and mount a file system over `dev`.
    pub fn mkfs(dev: Arc<dyn NvmeTarget>, costs: KernelCosts, opts: FsOptions) -> Arc<Ext4Fs> {
        Ext4Fs::mkfs_with_registry(dev, costs, opts, &Registry::new())
    }

    /// `mkfs`, with telemetry recorded under `kernsim.vfs.*` in `reg`.
    pub fn mkfs_with_registry(
        dev: Arc<dyn NvmeTarget>,
        costs: KernelCosts,
        opts: FsOptions,
        reg: &Registry,
    ) -> Arc<Ext4Fs> {
        let device_bytes = dev.blocks() * blocksim::BLOCK_SIZE;
        Arc::new(Ext4Fs {
            registry: reg.clone(),
            tel: VfsTelemetry::new(reg),
            block: BlockLayer::new(dev, costs.clone()),
            costs,
            meta: Mutex::new(Ext4Meta::mkfs(device_bytes, opts.max_inodes)),
            pcache: Mutex::new(PageCache::new(opts.page_cache_bytes)),
            dcache: Mutex::new(LruMap::new(opts.dcache_entries)),
            icache: Mutex::new(LruMap::new(opts.icache_entries)),
            fds: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            active_threads: AtomicUsize::new(1),
        })
    }

    /// Declare how many threads are concurrently issuing syscalls (used to
    /// charge shared-lock contention, Fig. 7a's "more cores interfere").
    pub fn set_active_threads(&self, n: usize) {
        self.active_threads.store(n.max(1), Ordering::Relaxed);
    }

    fn syscall_cost(&self, rt: &Runtime) {
        self.tel.syscalls.inc();
        let t = self.active_threads.load(Ordering::Relaxed);
        rt.work(self.costs.syscall + self.costs.contention(t));
    }

    /// The registry this file system records its `kernsim.vfs.*` metrics in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the syscall counters and pread latency histogram.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Drop page/dentry/inode caches (cold-cache experiments).
    pub fn drop_caches(&self) {
        self.pcache.lock().drop_caches();
        self.dcache.lock().clear();
        self.icache.lock().clear();
    }

    /// Page cache (hits, misses).
    pub fn page_cache_stats(&self) -> (u64, u64) {
        self.pcache.lock().stats()
    }

    /// Create all directories along `path` (untimed helper for setup).
    pub fn mkdir_p(&self, path: &str) -> Result<(), FsError> {
        let mut meta = self.meta.lock();
        let mut cur = String::new();
        for part in path.trim_matches('/').split('/').filter(|s| !s.is_empty()) {
            cur.push('/');
            cur.push_str(part);
            match meta.mkdir(&cur) {
                Ok(_) | Err(FsError::AlreadyExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Create a file with `data`, paying the full kernel write path:
    /// syscalls, journal, allocation, copy-from-user and device writes.
    pub fn create(&self, rt: &Runtime, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.tel.creates.inc();
        self.syscall_cost(rt); // open(O_CREAT)
        let (ino, runs, journal_io) = {
            let mut meta = self.meta.lock();
            let ino = meta.create_file(path)?;
            let blocks = (data.len() as u64).div_ceil(PAGE_SIZE).max(1);
            let exts = meta.extend_file(ino, blocks)?;
            // Journal the inode block and the parent directory's leaf block.
            let (parent, name, _) = meta.resolve(path)?;
            let leaf = meta.dir(parent).expect("parent dir").leaf_block_of(&name);
            let leaf_phys = meta.dir_leaf_physical(parent, leaf)?;
            let ino_block = meta.inode_block_of(ino);
            let io = meta.journal.handle(&[ino_block, leaf_phys]);
            (ino, exts, io)
        };
        let _ = ino;
        // write() syscall: copy from user, then data writeback.
        self.syscall_cost(rt);
        rt.work(self.costs.copy(data.len() as u64));
        self.block.write_blocks(rt, &runs, data);
        if let Some(io) = journal_io {
            self.block.write_blocks(
                rt,
                &[(io.start, io.blocks)],
                &vec![0u8; (io.blocks * PAGE_SIZE) as usize],
            );
        }
        self.syscall_cost(rt); // close()
        Ok(())
    }

    /// `open(2)`: path resolution through the dentry cache, directory leaf
    /// blocks and the on-disk inode table.
    pub fn open(&self, rt: &Runtime, path: &str) -> Result<Fd, FsError> {
        self.tel.opens.inc();
        self.syscall_cost(rt);
        let components = Ext4Meta::components(path);
        // Fast path: full-path dentry hit.
        let cached = { self.dcache.lock().get(&path.to_string()).copied() };
        let ino = match cached {
            Some(ino) => {
                rt.work(self.costs.dcache_hit * components.max(1) as u64);
                ino
            }
            None => {
                // Walk: intermediate components assumed dentry-resident
                // (hot directories), final component needs the real lookup.
                rt.work(self.costs.dcache_hit * components.saturating_sub(1).max(1) as u64);
                let (parent, name, found) = {
                    let meta = self.meta.lock();
                    meta.resolve(path)?
                };
                let ino = found.ok_or_else(|| FsError::NotFound(path.to_string()))?;
                // Read the directory leaf block holding the entry.
                let (leaf_phys, htree_depth) = {
                    let mut meta = self.meta.lock();
                    let dir = meta.dir(parent).ok_or(FsError::BadDescriptor)?;
                    let leaf = dir.leaf_block_of(&name);
                    let depth = dir.htree_depth();
                    (meta.dir_leaf_physical(parent, leaf)?, depth)
                };
                rt.work(self.costs.htree_search * (htree_depth as u64 + 1));
                self.read_meta_page(rt, (parent, leaf_phys));
                // Load the inode from the inode table.
                let icache_hit = { self.icache.lock().get(&ino).is_some() };
                if icache_hit {
                    rt.work(self.costs.icache_hit);
                } else {
                    let ino_block = { self.meta.lock().inode_block_of(ino) };
                    self.read_meta_page(rt, (INODE_TABLE_KEY, ino_block));
                    rt.work(self.costs.icache_hit + self.costs.copy(INODE_SIZE));
                    self.icache.lock().insert(ino, ());
                }
                self.dcache.lock().insert(path.to_string(), ino);
                ino
            }
        };
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fds.lock().insert(fd, OpenFile { ino, last_end: 0 });
        Ok(Fd(fd))
    }

    /// Read a metadata page through the page cache (cost-only content).
    fn read_meta_page(&self, rt: &Runtime, key: (u64, u64)) {
        rt.work(self.costs.pagecache_lookup);
        let hit = { self.pcache.lock().contains(key) };
        if hit {
            self.pcache.lock().lookup(key);
            return;
        }
        let mut page = vec![0u8; PAGE_SIZE as usize];
        self.block.read_blocks(rt, &[(key.1, 1)], &mut page);
        self.pcache.lock().insert_cost_only(key);
    }

    /// `pread(2)`: read `dst.len()` bytes at `offset`. Returns bytes read
    /// (truncated at end of file).
    pub fn pread(
        &self,
        rt: &Runtime,
        fd: Fd,
        offset: u64,
        dst: &mut [u8],
    ) -> Result<usize, FsError> {
        let started = rt.now();
        self.tel.preads.inc();
        self.syscall_cost(rt);
        let of = *self.fds.lock().get(&fd.0).ok_or(FsError::BadDescriptor)?;
        let ino = of.ino;
        let sequential = offset == of.last_end && offset != 0;
        let size = {
            let meta = self.meta.lock();
            meta.inode(ino).ok_or(FsError::BadDescriptor)?.size
        };
        // Note: size is tracked on create; files created via `create` set it
        // below. Fall back to mapped blocks if size is unset.
        let size = if size == 0 {
            let meta = self.meta.lock();
            meta.inode(ino).map(|i| i.blocks() * PAGE_SIZE).unwrap_or(0)
        } else {
            size
        };
        if offset >= size {
            return Ok(0);
        }
        let len = dst.len().min((size - offset) as usize);
        if let Some(f) = self.fds.lock().get_mut(&fd.0) {
            f.last_end = offset + len as u64;
        }
        let first_page = offset / PAGE_SIZE;
        let mut last_page = (offset + len as u64 - 1) / PAGE_SIZE;
        // Sequential streams trigger readahead: pull the next window into
        // the page cache with this request's bios, so subsequent reads hit.
        // Only when the request actually crosses the cached frontier —
        // otherwise every hit inside an already-fetched window would fetch
        // another window (read amplification).
        let tail_cached = { self.pcache.lock().contains((ino, last_page)) };
        if sequential && !tail_cached {
            let ra_pages = self.costs.max_bio_bytes / PAGE_SIZE;
            let eof_page = (size - 1) / PAGE_SIZE;
            last_page = (last_page + ra_pages).min(eof_page);
        }

        // Walk pages: satisfy from page cache, batch misses into runs.
        let mut page_buf = vec![0u8; PAGE_SIZE as usize];
        let mut miss_run: Option<(u64, u64)> = None; // (first logical page, count)
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for page in first_page..=last_page {
            rt.work(self.costs.pagecache_lookup);
            let hit = { self.pcache.lock().contains((ino, page)) };
            if hit {
                if let Some(r) = miss_run.take() {
                    runs.push(r);
                }
            } else {
                match &mut miss_run {
                    Some((_, c)) => *c += 1,
                    None => miss_run = Some((page, 1)),
                }
            }
        }
        if let Some(r) = miss_run.take() {
            runs.push(r);
        }

        // Fetch every missing run from the device and populate the cache.
        for (lpage, count) in runs {
            let phys_runs = {
                let meta = self.meta.lock();
                meta.inode(ino)
                    .ok_or(FsError::BadDescriptor)?
                    .map_range(lpage, count)
            };
            let mut buf = vec![0u8; (count * PAGE_SIZE) as usize];
            self.block.read_blocks(rt, &phys_runs, &mut buf);
            let mut pc = self.pcache.lock();
            for i in 0..count {
                let s = (i * PAGE_SIZE) as usize;
                pc.insert((ino, lpage + i), &buf[s..s + PAGE_SIZE as usize]);
            }
        }

        // Assemble the answer from the (now resident) pages + copy_to_user.
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let page = pos / PAGE_SIZE;
            let within = (pos % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - within).min(len - done);
            let ok = self.pcache.lock().read_page((ino, page), &mut page_buf);
            assert!(ok, "page {page} evicted mid-read (cache too small)");
            dst[done..done + n].copy_from_slice(&page_buf[within..within + n]);
            done += n;
        }
        rt.work(self.costs.copy(len as u64));
        self.tel.bytes_read.add(len as u64);
        self.tel.pread_ns.record_dur(rt.now() - started);
        Ok(len)
    }

    /// `fsync(2)`: force-commit the running journal transaction.
    pub fn fsync(&self, rt: &Runtime, fd: Fd) -> Result<(), FsError> {
        self.syscall_cost(rt);
        if !self.fds.lock().contains_key(&fd.0) {
            return Err(FsError::BadDescriptor);
        }
        let io = {
            let mut meta = self.meta.lock();
            meta.journal.force_commit()
        };
        if let Some(io) = io {
            self.block.write_blocks(
                rt,
                &[(io.start, io.blocks)],
                &vec![0u8; (io.blocks * PAGE_SIZE) as usize],
            );
        }
        Ok(())
    }

    /// Journal statistics: (commits, blocks logged).
    pub fn journal_stats(&self) -> (u64, u64) {
        let meta = self.meta.lock();
        (meta.journal.commits(), meta.journal.blocks_logged())
    }

    /// `close(2)`.
    pub fn close(&self, rt: &Runtime, fd: Fd) -> Result<(), FsError> {
        self.tel.closes.inc();
        self.syscall_cost(rt);
        self.fds
            .lock()
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(FsError::BadDescriptor)
    }

    /// Record a file's logical size (called by `create`).
    fn set_size(&self, ino: u64, size: u64) {
        if let Some(inode) = self.meta.lock().inode_mut(ino) {
            inode.size = size;
        }
    }

    /// Convenience: create + size bookkeeping.
    pub fn create_with_size(&self, rt: &Runtime, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.create(rt, path, data)?;
        let ino = {
            let meta = self.meta.lock();
            meta.resolve(path)?.2.ok_or(FsError::BadDescriptor)?
        };
        self.set_size(ino, data.len() as u64);
        Ok(())
    }

    /// Create a file with `data` without charging any virtual time: used by
    /// benchmark setup, where dataset staging is not a measured quantity.
    /// Metadata, extents and device contents end up identical to the timed
    /// path; caches stay cold.
    pub fn create_untimed(&self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let runs = {
            let mut meta = self.meta.lock();
            let ino = meta.create_file(path)?;
            let blocks = (data.len() as u64).div_ceil(PAGE_SIZE).max(1);
            let exts = meta.extend_file(ino, blocks)?;
            if let Some(inode) = meta.inode_mut(ino) {
                inode.size = data.len() as u64;
            }
            exts
        };
        // Deposit the bytes directly (no bios, no journal, no clock).
        let dev = self.block.device();
        let mut cursor = 0usize;
        for &(start, len) in &runs {
            let bytes = ((len * PAGE_SIZE) as usize).min(data.len() - cursor);
            if bytes == 0 {
                break;
            }
            dev.dma_write(
                start * crate::blockio::DEV_BLOCKS_PER_FS_BLOCK,
                &data[cursor..cursor + bytes],
            );
            cursor += bytes;
        }
        Ok(())
    }

    /// Create a file's metadata only (no payload): enough for experiments
    /// that measure `open` cost (Fig. 10) on directories of millions of
    /// files without materializing contents.
    pub fn stage_meta_only(&self, path: &str, size: u64) -> Result<(), FsError> {
        let mut meta = self.meta.lock();
        let ino = meta.create_file(path)?;
        let blocks = size.div_ceil(PAGE_SIZE).max(1);
        meta.extend_file(ino, blocks)?;
        if let Some(inode) = meta.inode_mut(ino) {
            inode.size = size;
        }
        Ok(())
    }

    /// `getdents(2)`-flavoured directory listing: returns the names in a
    /// directory, charging one syscall plus a leaf-block read per
    /// ~`ENTRIES_PER_BLOCK` entries (readdir walks every leaf).
    pub fn readdir(&self, rt: &Runtime, path: &str) -> Result<Vec<String>, FsError> {
        self.syscall_cost(rt);
        let (dir_ino, names, leaves) = {
            let meta = self.meta.lock();
            let ino = meta
                .resolve(path)?
                .2
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            let dir = meta
                .dir(ino)
                .ok_or_else(|| FsError::NotADirectory(path.to_string()))?;
            let names: Vec<String> = dir.names().map(|s| s.to_string()).collect();
            (ino, names, dir.leaf_blocks())
        };
        for leaf in 0..leaves {
            let phys = {
                let mut meta = self.meta.lock();
                meta.dir_leaf_physical(dir_ino, leaf)?
            };
            self.read_meta_page(rt, (dir_ino, phys));
        }
        Ok(names)
    }

    /// `unlink(2)`: remove a file, free its blocks, journal the metadata.
    pub fn unlink(&self, rt: &Runtime, path: &str) -> Result<(), FsError> {
        self.syscall_cost(rt);
        let journal_io = {
            let mut meta = self.meta.lock();
            let (parent, name, found) = meta.resolve(path)?;
            let ino = found.ok_or_else(|| FsError::NotFound(path.to_string()))?;
            // Free the file's extents.
            let extents: Vec<(u64, u64)> = meta
                .inode(ino)
                .ok_or(FsError::BadDescriptor)?
                .extents()
                .iter()
                .map(|e| (e.physical, e.len))
                .collect();
            for (p, l) in extents {
                meta.allocator.free_extent(p, l);
            }
            meta.dir_mut(parent)
                .expect("parent dir")
                .remove(&name)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            meta.remove_inode(ino);
            let ino_block = meta.inode_block_of(ino);
            meta.journal.handle(&[ino_block])
        };
        self.dcache.lock().remove(&path.to_string());
        if let Some(io) = journal_io {
            self.block.write_blocks(
                rt,
                &[(io.start, io.blocks)],
                &vec![0u8; (io.blocks * PAGE_SIZE) as usize],
            );
        }
        Ok(())
    }

    /// `pread` with O_DIRECT semantics: bypass the page cache entirely —
    /// block-aligned device I/O straight into the caller's buffer. Offset
    /// and length must be page-aligned, as the kernel requires.
    pub fn pread_direct(
        &self,
        rt: &Runtime,
        fd: Fd,
        offset: u64,
        dst: &mut [u8],
    ) -> Result<usize, FsError> {
        self.syscall_cost(rt);
        if !offset.is_multiple_of(PAGE_SIZE) || !(dst.len() as u64).is_multiple_of(PAGE_SIZE) {
            return Err(FsError::BadDescriptor);
        }
        let ino = self
            .fds
            .lock()
            .get(&fd.0)
            .ok_or(FsError::BadDescriptor)?
            .ino;
        let size = {
            let meta = self.meta.lock();
            let inode = meta.inode(ino).ok_or(FsError::BadDescriptor)?;
            if inode.size > 0 {
                inode.size
            } else {
                inode.blocks() * PAGE_SIZE
            }
        };
        if offset >= size {
            return Ok(0);
        }
        let len_pages = (dst.len() as u64 / PAGE_SIZE).min((size - offset).div_ceil(PAGE_SIZE));
        if len_pages == 0 {
            return Ok(0);
        }
        let runs = {
            let meta = self.meta.lock();
            meta.inode(ino)
                .ok_or(FsError::BadDescriptor)?
                .map_range(offset / PAGE_SIZE, len_pages)
        };
        self.block
            .read_blocks(rt, &runs, &mut dst[..(len_pages * PAGE_SIZE) as usize]);
        // No page-cache population, no copy_to_user (DMA into user pages).
        Ok(((size - offset).min(len_pages * PAGE_SIZE)) as usize)
    }

    /// File size by path (untimed helper).
    pub fn size_of(&self, path: &str) -> Result<u64, FsError> {
        let meta = self.meta.lock();
        let ino = meta
            .resolve(path)?
            .2
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        Ok(meta.inode(ino).map(|i| i.size).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blocksim::{DeviceConfig, NvmeDevice};

    use simkit::time::Dur;

    fn mkfs() -> Arc<Ext4Fs> {
        let dev = NvmeDevice::new(DeviceConfig::optane(256 << 20));
        Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default())
    }

    #[test]
    fn create_read_roundtrip() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            fs.mkdir_p("/data").unwrap();
            let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
            fs.create_with_size(rt, "/data/f1", &payload).unwrap();
            let fd = fs.open(rt, "/data/f1").unwrap();
            let mut out = vec![0u8; payload.len()];
            let n = fs.pread(rt, fd, 0, &mut out).unwrap();
            assert_eq!(n, payload.len());
            assert_eq!(out, payload);
            fs.close(rt, fd).unwrap();
        });
    }

    #[test]
    fn pread_at_offset_and_past_eof() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            let payload: Vec<u8> = (0..5000).map(|i| (i % 7) as u8).collect();
            fs.create_with_size(rt, "/f", &payload).unwrap();
            let fd = fs.open(rt, "/f").unwrap();
            let mut out = vec![0u8; 100];
            assert_eq!(fs.pread(rt, fd, 4900, &mut out).unwrap(), 100);
            assert_eq!(out[..], payload[4900..5000]);
            assert_eq!(fs.pread(rt, fd, 5000, &mut out).unwrap(), 0);
            let mut big = vec![0u8; 200];
            assert_eq!(fs.pread(rt, fd, 4950, &mut big).unwrap(), 50);
        });
    }

    #[test]
    fn open_missing_file_fails() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            assert!(matches!(fs.open(rt, "/nope"), Err(FsError::NotFound(_))));
        });
    }

    #[test]
    fn warm_open_is_much_cheaper_than_cold() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            fs.mkdir_p("/d").unwrap();
            for i in 0..200 {
                fs.create_with_size(rt, &format!("/d/f{i}"), &[0u8; 512])
                    .unwrap();
            }
            fs.drop_caches();
            let t0 = rt.now();
            let fd = fs.open(rt, "/d/f7").unwrap();
            let cold = rt.now() - t0;
            fs.close(rt, fd).unwrap();
            let t1 = rt.now();
            let fd = fs.open(rt, "/d/f7").unwrap();
            let warm = rt.now() - t1;
            fs.close(rt, fd).unwrap();
            // Cold open reads directory leaf + inode block from the device
            // (>20us); warm open is dentry-cache only (<5us).
            assert!(cold > Dur::micros(20), "cold {cold:?}");
            assert!(warm < Dur::micros(5), "warm {warm:?}");
            assert!(cold.as_nanos() > warm.as_nanos() * 5);
        });
    }

    #[test]
    fn page_cache_hit_read_is_cheaper() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            let payload = vec![3u8; 65536];
            fs.create_with_size(rt, "/f", &payload).unwrap();
            fs.drop_caches();
            let fd = fs.open(rt, "/f").unwrap();
            let mut out = vec![0u8; 65536];
            let t0 = rt.now();
            fs.pread(rt, fd, 0, &mut out).unwrap();
            let cold = rt.now() - t0;
            let t1 = rt.now();
            fs.pread(rt, fd, 0, &mut out).unwrap();
            let hot = rt.now() - t1;
            assert!(
                cold.as_nanos() > hot.as_nanos() * 2,
                "cold {cold:?} hot {hot:?}"
            );
            let (hits, _misses) = fs.page_cache_stats();
            assert!(hits > 0);
        });
    }

    #[test]
    fn contention_raises_syscall_cost() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            fs.create_with_size(rt, "/f", &[1u8; 512]).unwrap();
            let fd = fs.open(rt, "/f").unwrap();
            let mut out = vec![0u8; 512];
            fs.pread(rt, fd, 0, &mut out).unwrap(); // warm the cache
            let t0 = rt.now();
            fs.pread(rt, fd, 0, &mut out).unwrap();
            let single = rt.now() - t0;
            fs.set_active_threads(8);
            let t1 = rt.now();
            fs.pread(rt, fd, 0, &mut out).unwrap();
            let contended = rt.now() - t1;
            assert!(contended > single, "{contended:?} <= {single:?}");
        });
    }

    #[test]
    fn bad_fd_errors() {
        Runtime::simulate(0, |rt| {
            let fs = mkfs();
            let mut out = [0u8; 8];
            assert!(matches!(
                fs.pread(rt, Fd(999), 0, &mut out),
                Err(FsError::BadDescriptor)
            ));
            assert!(matches!(fs.close(rt, Fd(999)), Err(FsError::BadDescriptor)));
        });
    }
}
