//! The page cache: an LRU over 4 KiB pages keyed by (inode, page index).
//!
//! Pages hold real bytes, so cache hits return the same data a device read
//! would. Capacity is bounded; eviction is plain LRU (close enough to the
//! kernel's two-list scheme for a random-read workload, where both degrade
//! to "almost never hit").

use crate::lru::LruMap;
use crate::params::PAGE_SIZE;

/// Key: (inode number, page index within the file or metadata region).
pub type PageKey = (u64, u64);

#[derive(Debug)]
pub struct PageCache {
    pages: LruMap<PageKey, Box<[u8]>>,
}

impl PageCache {
    /// `capacity_bytes` of page cache (rounded down to whole pages).
    pub fn new(capacity_bytes: u64) -> PageCache {
        let pages = (capacity_bytes / PAGE_SIZE).max(1) as usize;
        PageCache {
            pages: LruMap::new(pages),
        }
    }

    pub fn capacity_pages(&self) -> usize {
        self.pages.capacity()
    }

    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// (hits, misses) of `lookup` calls.
    pub fn stats(&self) -> (u64, u64) {
        self.pages.stats()
    }

    /// Is the page resident? Marks it most-recently-used when it is.
    pub fn lookup(&mut self, key: PageKey) -> Option<&[u8]> {
        self.pages.get(&key).map(|p| &p[..])
    }

    /// Copy a resident page's bytes into `dst` (full page). Returns false on
    /// miss without touching `dst`.
    pub fn read_page(&mut self, key: PageKey, dst: &mut [u8]) -> bool {
        match self.pages.get(&key) {
            Some(p) => {
                dst.copy_from_slice(&p[..dst.len()]);
                true
            }
            None => false,
        }
    }

    /// Insert a page (copies `src`, padding/truncating to PAGE_SIZE).
    pub fn insert(&mut self, key: PageKey, src: &[u8]) {
        let mut page = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        let n = src.len().min(PAGE_SIZE as usize);
        page[..n].copy_from_slice(&src[..n]);
        self.pages.insert(key, page);
    }

    /// Mark a page resident without providing content (metadata blocks whose
    /// bytes we model only for cost). Reads of such pages return zeros.
    pub fn insert_cost_only(&mut self, key: PageKey) {
        self.pages
            .insert(key, vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
    }

    pub fn contains(&self, key: PageKey) -> bool {
        self.pages.contains(&key)
    }

    /// Drop everything (echo 3 > /proc/sys/vm/drop_caches).
    pub fn drop_caches(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_hit() {
        let mut pc = PageCache::new(16 * PAGE_SIZE);
        let data = vec![9u8; PAGE_SIZE as usize];
        pc.insert((7, 0), &data);
        let mut out = vec![0u8; PAGE_SIZE as usize];
        assert!(pc.read_page((7, 0), &mut out));
        assert_eq!(out, data);
        assert!(!pc.read_page((7, 1), &mut out));
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut pc = PageCache::new(4 * PAGE_SIZE);
        for i in 0..100u64 {
            pc.insert((1, i), &[0u8; 4096]);
        }
        assert_eq!(pc.resident_pages(), 4);
        assert!(pc.contains((1, 99)));
        assert!(!pc.contains((1, 0)));
    }

    #[test]
    fn short_insert_pads() {
        let mut pc = PageCache::new(PAGE_SIZE);
        pc.insert((1, 0), &[5u8; 100]);
        let mut out = vec![0xffu8; PAGE_SIZE as usize];
        assert!(pc.read_page((1, 0), &mut out));
        assert!(out[..100].iter().all(|&b| b == 5));
        assert!(out[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn drop_caches_clears() {
        let mut pc = PageCache::new(8 * PAGE_SIZE);
        pc.insert((1, 0), &[1u8; 4096]);
        pc.drop_caches();
        assert_eq!(pc.resident_pages(), 0);
        assert!(!pc.contains((1, 0)));
    }

    #[test]
    fn hit_miss_accounting() {
        let mut pc = PageCache::new(8 * PAGE_SIZE);
        pc.insert((1, 0), &[0u8; 4096]);
        pc.lookup((1, 0));
        pc.lookup((1, 1));
        assert_eq!(pc.stats(), (1, 1));
    }
}
