//! Calibrated cost constants for the kernel I/O path.
//!
//! These are the overheads DLFS avoids by going user-level (paper Fig. 2b:
//! "multiple context switches and data copies are incurred" along the
//! kernel stack). Values are round numbers from public microbenchmarks of
//! Linux-era-4.x storage stacks on Xeon-class hardware; EXPERIMENTS.md
//! compares only shapes/ratios, which are insensitive to ±30% here.

use simkit::time::Dur;

/// Kernel page size used by the page cache and ext4 block size.
pub const PAGE_SIZE: u64 = 4096;

#[derive(Clone, Debug)]
pub struct KernelCosts {
    /// User→kernel→user transition per syscall (entry + exit + dispatch).
    pub syscall: Dur,
    /// Blocking on I/O: schedule out + wake up on completion.
    pub context_switch: Dur,
    /// Interrupt handling per device completion.
    pub irq: Dur,
    /// copy_to_user / copy_from_user bandwidth (bytes/s, one core).
    pub copy_bytes_per_sec: f64,
    /// Block-layer cost to build/submit one bio.
    pub bio_submit: Dur,
    /// Dentry-cache hit cost during path resolution (per component).
    pub dcache_hit: Dur,
    /// Hashed-directory (htree) search once the block is resident.
    pub htree_search: Dur,
    /// Page-cache radix lookup per page.
    pub pagecache_lookup: Dur,
    /// Inode-cache hit cost.
    pub icache_hit: Dur,
    /// Per-syscall penalty for shared-structure lock contention, multiplied
    /// by log2(active threads).
    pub smp_penalty: Dur,
    /// Largest bio the block layer will issue at once (readahead window).
    pub max_bio_bytes: u64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            syscall: Dur::nanos(1_300),
            context_switch: Dur::nanos(3_000),
            irq: Dur::nanos(1_800),
            copy_bytes_per_sec: 6.0e9,
            bio_submit: Dur::nanos(1_000),
            dcache_hit: Dur::nanos(300),
            htree_search: Dur::nanos(1_200),
            pagecache_lookup: Dur::nanos(250),
            icache_hit: Dur::nanos(250),
            smp_penalty: Dur::nanos(400),
            max_bio_bytes: 512 * 1024,
        }
    }
}

impl KernelCosts {
    /// Time to copy `bytes` between kernel and user space on one core.
    pub fn copy(&self, bytes: u64) -> Dur {
        Dur::for_bytes(bytes, self.copy_bytes_per_sec)
    }

    /// Lock-contention penalty with `threads` concurrent syscall issuers.
    pub fn contention(&self, threads: usize) -> Dur {
        if threads <= 1 {
            Dur::ZERO
        } else {
            self.smp_penalty * (usize::BITS - (threads - 1).leading_zeros()) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales() {
        let c = KernelCosts::default();
        let one_mb = c.copy(1 << 20);
        // 1 MiB at 6 GB/s ≈ 175 us.
        assert!(
            (170_000..180_000).contains(&one_mb.as_nanos()),
            "{one_mb:?}"
        );
        assert_eq!(c.copy(0), Dur::ZERO);
    }

    #[test]
    fn contention_grows_logarithmically() {
        let c = KernelCosts::default();
        assert_eq!(c.contention(1), Dur::ZERO);
        assert_eq!(c.contention(2), c.smp_penalty);
        assert_eq!(c.contention(4), c.smp_penalty * 2);
        assert_eq!(c.contention(8), c.smp_penalty * 3);
        assert_eq!(c.contention(9), c.smp_penalty * 4);
    }
}
