//! The kernel block layer: turns file-system block runs into device bios,
//! charges submission and completion costs, and blocks the calling thread
//! until the I/O finishes — the interrupt-driven path DLFS bypasses.

use std::sync::Arc;

use blocksim::{NvmeTarget, BLOCK_SIZE};
use simkit::runtime::Runtime;
use simkit::time::Time;

use crate::params::{KernelCosts, PAGE_SIZE};

/// Device blocks per file-system block.
pub const DEV_BLOCKS_PER_FS_BLOCK: u64 = PAGE_SIZE / BLOCK_SIZE;

#[derive(Clone)]
pub struct BlockLayer {
    dev: Arc<dyn NvmeTarget>,
    costs: KernelCosts,
}

impl std::fmt::Debug for BlockLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockLayer")
            .field("dev", &self.dev.describe())
            .finish()
    }
}

impl BlockLayer {
    pub fn new(dev: Arc<dyn NvmeTarget>, costs: KernelCosts) -> BlockLayer {
        BlockLayer { dev, costs }
    }

    pub fn device(&self) -> &Arc<dyn NvmeTarget> {
        &self.dev
    }

    fn split_bios(&self, runs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let max_fs_blocks = (self.costs.max_bio_bytes / PAGE_SIZE).max(1);
        let mut bios = Vec::new();
        for &(start, len) in runs {
            let mut off = 0;
            while off < len {
                let n = (len - off).min(max_fs_blocks);
                bios.push((start + off, n));
                off += n;
            }
        }
        bios
    }

    /// Read the physical fs-block `runs` (start, len in fs blocks),
    /// depositing the bytes consecutively into `dst`. Blocks (sleeps) until
    /// the last bio completes; charges bio submission, IRQ and wakeup costs.
    pub fn read_blocks(&self, rt: &Runtime, runs: &[(u64, u64)], dst: &mut [u8]) {
        let total_blocks: u64 = runs.iter().map(|r| r.1).sum();
        assert!(
            dst.len() as u64 >= total_blocks * PAGE_SIZE,
            "dst too small"
        );
        let bios = self.split_bios(runs);
        // Submit all bios (the kernel plugs the queue, so they pipeline).
        // Bios failed by the device are retried, as the kernel block layer
        // does before surfacing EIO.
        let mut queue: Vec<(u64, u64)> = bios.clone();
        let mut attempts = 0;
        while !queue.is_empty() {
            attempts += 1;
            assert!(attempts <= 8, "device keeps failing reads");
            let mut latest = Time::ZERO;
            let mut failed = Vec::new();
            for &(start, len) in &queue {
                rt.work(self.costs.bio_submit);
                let fault = self.dev.fault_decide(rt.now(), false);
                let done = self.dev.reserve_read(
                    rt.now(),
                    start * DEV_BLOCKS_PER_FS_BLOCK,
                    (len * DEV_BLOCKS_PER_FS_BLOCK) as u32,
                ) + fault.extra_latency;
                latest = latest.max(done);
                if !fault.status.is_ok() {
                    failed.push((start, len));
                }
            }
            let now = rt.now();
            if latest > now {
                rt.sleep(latest - now);
            }
            for _ in &queue {
                rt.work(self.costs.irq);
            }
            rt.work(self.costs.context_switch);
            queue = failed;
        }
        // DMA the payload (no CPU charged: the device wrote it to memory).
        let mut cursor = 0usize;
        for &(start, len) in runs {
            let bytes = (len * PAGE_SIZE) as usize;
            self.dev.dma_read(
                start * DEV_BLOCKS_PER_FS_BLOCK,
                &mut dst[cursor..cursor + bytes],
            );
            cursor += bytes;
        }
    }

    /// Write `src` to the physical fs-block `runs`. Blocking, like an
    /// O_DIRECT/fsync'd write (used by dataset loading and journal commits).
    pub fn write_blocks(&self, rt: &Runtime, runs: &[(u64, u64)], src: &[u8]) {
        let total_blocks: u64 = runs.iter().map(|r| r.1).sum();
        assert!(
            src.len() as u64 <= total_blocks * PAGE_SIZE,
            "src too large"
        );
        let bios = self.split_bios(runs);
        let mut cursor = 0usize;
        for &(start, len) in runs {
            let bytes = ((len * PAGE_SIZE) as usize).min(src.len() - cursor);
            if bytes == 0 {
                break;
            }
            self.dev.dma_write(
                start * DEV_BLOCKS_PER_FS_BLOCK,
                &src[cursor..cursor + bytes],
            );
            cursor += bytes;
        }
        let mut queue: Vec<(u64, u64)> = bios.clone();
        let mut attempts = 0;
        while !queue.is_empty() {
            attempts += 1;
            assert!(attempts <= 8, "device keeps failing writes");
            let mut latest = Time::ZERO;
            let mut failed = Vec::new();
            for &(start, len) in &queue {
                rt.work(self.costs.bio_submit);
                let fault = self.dev.fault_decide(rt.now(), true);
                let done = self.dev.reserve_write(
                    rt.now(),
                    start * DEV_BLOCKS_PER_FS_BLOCK,
                    (len * DEV_BLOCKS_PER_FS_BLOCK) as u32,
                ) + fault.extra_latency;
                latest = latest.max(done);
                if !fault.status.is_ok() {
                    failed.push((start, len));
                }
            }
            let now = rt.now();
            if latest > now {
                rt.sleep(latest - now);
            }
            for _ in &queue {
                rt.work(self.costs.irq);
            }
            rt.work(self.costs.context_switch);
            queue = failed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blocksim::{DeviceConfig, NvmeDevice};

    use simkit::time::Dur;

    fn layer() -> BlockLayer {
        let dev = NvmeDevice::new(DeviceConfig::optane(64 << 20));
        BlockLayer::new(dev, KernelCosts::default())
    }

    #[test]
    fn read_write_roundtrip() {
        Runtime::simulate(0, |rt| {
            let bl = layer();
            let data: Vec<u8> = (0..2 * PAGE_SIZE as usize)
                .map(|i| (i % 253) as u8)
                .collect();
            bl.write_blocks(rt, &[(100, 2)], &data);
            let mut out = vec![0u8; data.len()];
            bl.read_blocks(rt, &[(100, 2)], &mut out);
            assert_eq!(out, data);
        });
    }

    #[test]
    fn read_charges_kernel_costs() {
        Runtime::simulate(0, |rt| {
            let bl = layer();
            let mut out = vec![0u8; PAGE_SIZE as usize];
            let t0 = rt.now();
            bl.read_blocks(rt, &[(0, 1)], &mut out);
            let elapsed = rt.now() - t0;
            let c = KernelCosts::default();
            let min = c.bio_submit + Dur::micros(10) + c.irq + c.context_switch;
            assert!(elapsed >= min, "{elapsed:?} < {min:?}");
        });
    }

    #[test]
    fn large_read_splits_into_pipelined_bios() {
        // A 4 MB read must not take 8x the time of a 512 KB read: bios
        // pipeline on the device.
        let time_for = |fs_blocks: u64| {
            Runtime::simulate(0, |rt| {
                let bl = layer();
                let mut out = vec![0u8; (fs_blocks * PAGE_SIZE) as usize];
                let t0 = rt.now();
                bl.read_blocks(rt, &[(0, fs_blocks)], &mut out);
                (rt.now() - t0).as_nanos()
            })
            .0
        };
        let small = time_for(128); // 512 KB: one bio
        let big = time_for(1024); // 4 MB: eight bios
        assert!(big < small * 10, "big={big} small={small}");
        // Bandwidth-dominated: the big read should take roughly 8x the
        // transfer time, so at least 5x the small read.
        assert!(big > small * 5, "big={big} small={small}");
    }

    #[test]
    fn scattered_runs_assemble_in_order() {
        Runtime::simulate(0, |rt| {
            let bl = layer();
            let a = vec![1u8; PAGE_SIZE as usize];
            let b = vec![2u8; PAGE_SIZE as usize];
            bl.write_blocks(rt, &[(10, 1)], &a);
            bl.write_blocks(rt, &[(50, 1)], &b);
            let mut out = vec![0u8; 2 * PAGE_SIZE as usize];
            bl.read_blocks(rt, &[(50, 1), (10, 1)], &mut out);
            assert!(out[..PAGE_SIZE as usize].iter().all(|&x| x == 2));
            assert!(out[PAGE_SIZE as usize..].iter().all(|&x| x == 1));
        });
    }
}
