//! # kernsim — a kernel I/O stack with an ext4-like file system
//!
//! The "Ext4" baseline of the DLFS paper, built for real: VFS syscall layer
//! with dentry/inode caches ([`vfs::Ext4Fs`]), an ext4-flavoured on-disk
//! design (inode table, extent trees, htree directories, bitmap allocator,
//! jbd2-style journal — [`ext4`]), an LRU page cache ([`pagecache`]), and a
//! block layer that submits bios and blocks on interrupts ([`blockio`]).
//!
//! Every sample read through this stack pays the costs DLFS's user-level
//! design avoids: syscall transitions, metadata walks against on-disk
//! blocks, per-bio handling, IRQ + context switch, and copy-to-user
//! ([`params::KernelCosts`]).

//! ## Example
//!
//! ```
//! use blocksim::{DeviceConfig, NvmeDevice};
//! use kernsim::{Ext4Fs, FsOptions, KernelCosts};
//! use simkit::prelude::*;
//!
//! let ((), _) = Runtime::simulate(7, |rt| {
//!     let dev = NvmeDevice::new(DeviceConfig::optane(128 << 20));
//!     let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
//!     fs.mkdir_p("/data").unwrap();
//!     fs.create_with_size(rt, "/data/a.bin", &[42u8; 8192]).unwrap();
//!     let fd = fs.open(rt, "/data/a.bin").unwrap();
//!     let mut buf = [0u8; 8192];
//!     assert_eq!(fs.pread(rt, fd, 0, &mut buf).unwrap(), 8192);
//!     assert!(buf.iter().all(|&b| b == 42));
//!     fs.close(rt, fd).unwrap();
//! });
//! ```

#![forbid(unsafe_code)]

pub mod blockio;
pub mod ext4;
pub mod lru;
pub mod pagecache;
pub mod params;
pub mod vfs;

pub use ext4::{Ext4Meta, FsError};
pub use params::{KernelCosts, PAGE_SIZE};
pub use vfs::{Ext4Fs, Fd, FsOptions};
