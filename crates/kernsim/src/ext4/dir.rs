//! Hashed directories (ext4 htree flavour).
//!
//! Functionally a name → inode map; structurally the entries are spread
//! over directory *leaf blocks* by name hash, exactly the property that
//! determines the I/O cost of a cold lookup: hash the name, read one leaf
//! block, scan it. The leaf-block placement feeds the page-cache / device
//! model during path resolution.

use std::collections::HashMap;

use simkit::rng::fnv1a;

/// Approximate directory entries per 4 KiB leaf block (ext4 dirent ≈ 40 B
/// for short names, minus htree overhead).
pub const ENTRIES_PER_BLOCK: u64 = 96;

#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<String, u64>,
}

impl Directory {
    pub fn new() -> Directory {
        Directory::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of leaf blocks the directory occupies.
    pub fn leaf_blocks(&self) -> u64 {
        (self.entries.len() as u64)
            .div_ceil(ENTRIES_PER_BLOCK)
            .max(1)
    }

    /// Htree depth: 0 while a single block suffices, then 1 level of index
    /// per ~510 leaf pointers.
    pub fn htree_depth(&self) -> u32 {
        let leaves = self.leaf_blocks();
        if leaves <= 1 {
            0
        } else if leaves <= 510 {
            1
        } else {
            2
        }
    }

    /// The leaf block a name's entry lives in (by name hash).
    pub fn leaf_block_of(&self, name: &str) -> u64 {
        fnv1a(name.as_bytes()) % self.leaf_blocks()
    }

    pub fn insert(&mut self, name: &str, ino: u64) -> Option<u64> {
        self.entries.insert(name.to_string(), ino)
    }

    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    pub fn remove(&mut self, name: &str) -> Option<u64> {
        self.entries.remove(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut d = Directory::new();
        assert!(d.insert("a.jpg", 10).is_none());
        assert_eq!(d.insert("a.jpg", 11), Some(10));
        assert_eq!(d.lookup("a.jpg"), Some(11));
        assert_eq!(d.remove("a.jpg"), Some(11));
        assert_eq!(d.lookup("a.jpg"), None);
    }

    #[test]
    fn leaf_blocks_grow_with_entries() {
        let mut d = Directory::new();
        assert_eq!(d.leaf_blocks(), 1);
        for i in 0..(ENTRIES_PER_BLOCK * 3 + 1) {
            d.insert(&format!("f{i}"), i);
        }
        assert_eq!(d.leaf_blocks(), 4);
        assert_eq!(d.htree_depth(), 1);
    }

    #[test]
    fn big_directory_htree_depth() {
        let mut d = Directory::new();
        for i in 0..(ENTRIES_PER_BLOCK * 600) {
            d.insert(&format!("f{i}"), i);
        }
        assert_eq!(d.htree_depth(), 2);
    }

    #[test]
    fn leaf_block_of_is_stable_and_in_range() {
        let mut d = Directory::new();
        for i in 0..1000u64 {
            d.insert(&format!("sample_{i}"), i);
        }
        let b1 = d.leaf_block_of("sample_500");
        let b2 = d.leaf_block_of("sample_500");
        assert_eq!(b1, b2);
        assert!(b1 < d.leaf_blocks());
    }

    #[test]
    fn hash_spreads_entries() {
        let mut d = Directory::new();
        for i in 0..(ENTRIES_PER_BLOCK * 8) {
            d.insert(&format!("sample_{i:06}"), i);
        }
        let leaves = d.leaf_blocks();
        let mut hist = vec![0u64; leaves as usize];
        for name in d.names().map(|s| s.to_string()).collect::<Vec<_>>() {
            hist[d.leaf_block_of(&name) as usize] += 1;
        }
        // No leaf should be empty and none should hold more than 4x the mean.
        let mean = ENTRIES_PER_BLOCK * 8 / leaves;
        for &h in &hist {
            assert!(h > 0, "{hist:?}");
            assert!(h < mean * 4, "{hist:?}");
        }
    }
}
