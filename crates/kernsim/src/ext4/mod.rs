//! In-memory ext4-like metadata: superblock layout, inode table, directory
//! tree, block allocation, journal.
//!
//! The *contents* of data files are really written to the device; metadata
//! structures are kept functionally in memory while their on-disk locations
//! (inode-table blocks, directory leaf blocks, journal region) are tracked
//! so the VFS layer can charge real device I/O for cold metadata access —
//! exactly the cost the paper's Fig. 10 attributes to "complex inode and
//! block management".

pub mod alloc;
pub mod dir;
pub mod inode;
pub mod journal;

use std::collections::HashMap;

use self::alloc::BitmapAllocator;
use self::dir::Directory;
use self::inode::{Inode, InodeKind, INODE_SIZE};
use self::journal::Journal;
use crate::params::PAGE_SIZE;

/// Root directory inode number (as in ext*).
pub const ROOT_INO: u64 = 2;

/// Filesystem layout + metadata.
#[derive(Debug)]
pub struct Ext4Meta {
    /// Total fs blocks on the device.
    pub fs_blocks: u64,
    /// First block of the on-disk inode table.
    pub inode_table_start: u64,
    /// Blocks reserved for the inode table.
    pub inode_table_blocks: u64,
    pub allocator: BitmapAllocator,
    pub journal: Journal,
    inodes: HashMap<u64, Inode>,
    dirs: HashMap<u64, Directory>,
    /// Physical leaf-block placement per directory: dir ino → first block.
    dir_block_base: HashMap<u64, u64>,
    dir_block_len: HashMap<u64, u64>,
    next_ino: u64,
}

/// Errors from metadata operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    NotFound(String),
    NotADirectory(String),
    AlreadyExists(String),
    NoSpace,
    BadDescriptor,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::BadDescriptor => write!(f, "bad file descriptor"),
        }
    }
}

impl std::error::Error for FsError {}

impl Ext4Meta {
    /// Lay out a filesystem over `device_bytes`: superblock+bitmaps (64
    /// blocks), inode table sized for `max_inodes`, a journal (1024 blocks),
    /// then the data area.
    pub fn mkfs(device_bytes: u64, max_inodes: u64) -> Ext4Meta {
        let fs_blocks = device_bytes / PAGE_SIZE;
        let reserved = 64u64;
        let inodes_per_block = PAGE_SIZE / INODE_SIZE;
        // Cap the inode table at 1/8 of the device (ext4's default ratio is
        // one inode per 16 KiB, i.e. 1/64; callers asking for more inodes
        // than the device supports get the clamped maximum).
        let max_inodes = max_inodes
            .min(fs_blocks / 8 * inodes_per_block)
            .max(inodes_per_block);
        let inode_table_blocks = max_inodes.div_ceil(inodes_per_block);
        let journal_start = reserved + inode_table_blocks;
        let journal_blocks = 1024u64.min(fs_blocks / 32).max(4);
        let data_start = journal_start + journal_blocks;
        assert!(
            data_start + 16 < fs_blocks,
            "device too small for requested inode count"
        );
        let mut meta = Ext4Meta {
            fs_blocks,
            inode_table_start: reserved,
            inode_table_blocks,
            allocator: BitmapAllocator::new(data_start, fs_blocks - data_start),
            journal: Journal::new(journal_start, journal_blocks, 32),
            inodes: HashMap::new(),
            dirs: HashMap::new(),
            dir_block_base: HashMap::new(),
            dir_block_len: HashMap::new(),
            next_ino: ROOT_INO + 1,
        };
        meta.inodes
            .insert(ROOT_INO, Inode::new(ROOT_INO, InodeKind::Dir));
        meta.dirs.insert(ROOT_INO, Directory::new());
        meta
    }

    pub fn inode(&self, ino: u64) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    pub fn inode_mut(&mut self, ino: u64) -> Option<&mut Inode> {
        self.inodes.get_mut(&ino)
    }

    pub fn dir(&self, ino: u64) -> Option<&Directory> {
        self.dirs.get(&ino)
    }

    pub fn dir_mut(&mut self, ino: u64) -> Option<&mut Directory> {
        self.dirs.get_mut(&ino)
    }

    /// Drop an inode (unlink path; the caller frees its extents first).
    pub fn remove_inode(&mut self, ino: u64) {
        self.inodes.remove(&ino);
        self.dirs.remove(&ino);
    }

    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// The on-disk fs block holding inode `ino`'s descriptor.
    pub fn inode_block_of(&self, ino: u64) -> u64 {
        let inodes_per_block = PAGE_SIZE / INODE_SIZE;
        self.inode_table_start + (ino / inodes_per_block).min(self.inode_table_blocks - 1)
    }

    /// Physical fs block of a directory's `leaf`-th leaf block, allocating
    /// or growing the directory's block run as needed.
    pub fn dir_leaf_physical(&mut self, dir_ino: u64, leaf: u64) -> Result<u64, FsError> {
        let need = self
            .dirs
            .get(&dir_ino)
            .ok_or(FsError::BadDescriptor)?
            .leaf_blocks();
        let have = self.dir_block_len.get(&dir_ino).copied().unwrap_or(0);
        if need > have {
            // Re-place the directory's leaves in one contiguous run (ext4
            // would split; one run keeps the model simple and only makes the
            // baseline *faster*, i.e. conservative for DLFS comparisons).
            let grow = (need.max(4)).next_power_of_two();
            let exts = self.allocator.alloc_blocks(grow).ok_or(FsError::NoSpace)?;
            if let (Some(&base), Some(&len)) = (
                self.dir_block_base.get(&dir_ino),
                self.dir_block_len.get(&dir_ino),
            ) {
                if len > 0 {
                    self.allocator.free_extent(base, len);
                }
            }
            self.dir_block_base.insert(dir_ino, exts[0].0);
            self.dir_block_len.insert(dir_ino, grow);
        }
        let base = self.dir_block_base[&dir_ino];
        Ok(base + leaf)
    }

    /// Resolve an absolute path to (parent_dir_ino, file_name, ino).
    /// `ino` is `None` when the final component doesn't exist.
    pub fn resolve(&self, path: &str) -> Result<(u64, String, Option<u64>), FsError> {
        let mut parts = path
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .peekable();
        let mut cur = ROOT_INO;
        let mut name = String::new();
        while let Some(part) = parts.next() {
            let dir = self
                .dirs
                .get(&cur)
                .ok_or_else(|| FsError::NotADirectory(path.to_string()))?;
            if parts.peek().is_none() {
                name = part.to_string();
                return Ok((cur, name, dir.lookup(part)));
            }
            cur = dir
                .lookup(part)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            if self.inodes.get(&cur).map(|i| i.kind) != Some(InodeKind::Dir) {
                return Err(FsError::NotADirectory(path.to_string()));
            }
        }
        // Path was "/": treat as root.
        Ok((ROOT_INO, name, Some(ROOT_INO)))
    }

    /// Number of `/`-separated components in a path (for resolution cost).
    pub fn components(path: &str) -> u32 {
        path.trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .count() as u32
    }

    /// Create a directory at `path` (parents must exist).
    pub fn mkdir(&mut self, path: &str) -> Result<u64, FsError> {
        let (parent, name, existing) = self.resolve(path)?;
        if existing.is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Inode::new(ino, InodeKind::Dir));
        self.dirs.insert(ino, Directory::new());
        self.dirs
            .get_mut(&parent)
            .expect("parent exists")
            .insert(&name, ino);
        Ok(ino)
    }

    /// Create an empty regular file at `path`; returns its inode number.
    pub fn create_file(&mut self, path: &str) -> Result<u64, FsError> {
        let (parent, name, existing) = self.resolve(path)?;
        if existing.is_some() {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, Inode::new(ino, InodeKind::File));
        self.dirs
            .get_mut(&parent)
            .expect("parent exists")
            .insert(&name, ino);
        Ok(ino)
    }

    /// Extend a file by `blocks`, returning the allocated extents.
    pub fn extend_file(&mut self, ino: u64, blocks: u64) -> Result<Vec<(u64, u64)>, FsError> {
        let exts = self
            .allocator
            .alloc_blocks(blocks)
            .ok_or(FsError::NoSpace)?;
        let inode = self.inodes.get_mut(&ino).ok_or(FsError::BadDescriptor)?;
        for &(p, l) in &exts {
            inode.append_extent(p, l);
        }
        Ok(exts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkfs_layout_is_ordered() {
        let m = Ext4Meta::mkfs(1 << 30, 100_000);
        assert!(m.inode_table_start > 0);
        let journal_start = m.inode_table_start + m.inode_table_blocks;
        assert!(journal_start < m.fs_blocks);
        assert!(m.allocator.total() > 0);
        assert!(m.inode(ROOT_INO).is_some());
    }

    #[test]
    fn create_and_resolve_nested() {
        let mut m = Ext4Meta::mkfs(1 << 28, 10_000);
        m.mkdir("/data").unwrap();
        m.mkdir("/data/train").unwrap();
        let ino = m.create_file("/data/train/s1.bin").unwrap();
        let (parent, name, found) = m.resolve("/data/train/s1.bin").unwrap();
        assert_eq!(found, Some(ino));
        assert_eq!(name, "s1.bin");
        assert_eq!(m.dir(parent).unwrap().lookup("s1.bin"), Some(ino));
    }

    #[test]
    fn resolve_missing_component_errors() {
        let m = Ext4Meta::mkfs(1 << 28, 1000);
        assert!(matches!(m.resolve("/nope/file"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn create_duplicate_fails() {
        let mut m = Ext4Meta::mkfs(1 << 28, 1000);
        m.create_file("/a").unwrap();
        assert!(matches!(
            m.create_file("/a"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn file_through_dir_component_fails() {
        let mut m = Ext4Meta::mkfs(1 << 28, 1000);
        m.create_file("/a").unwrap();
        assert!(matches!(m.resolve("/a/b"), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn extend_maps_blocks() {
        let mut m = Ext4Meta::mkfs(1 << 28, 1000);
        let ino = m.create_file("/f").unwrap();
        let exts = m.extend_file(ino, 10).unwrap();
        assert!(!exts.is_empty());
        let inode = m.inode(ino).unwrap();
        assert_eq!(inode.blocks(), 10);
        assert!(inode.map_block(9).is_some());
    }

    #[test]
    fn inode_blocks_spread_over_table() {
        let m = Ext4Meta::mkfs(1 << 30, 100_000);
        let b0 = m.inode_block_of(0);
        let b1 = m.inode_block_of(16);
        let bmax = m.inode_block_of(99_999);
        assert_eq!(b0, m.inode_table_start);
        assert_eq!(b1, m.inode_table_start + 1);
        assert!(bmax < m.inode_table_start + m.inode_table_blocks);
    }

    #[test]
    fn dir_leaf_physical_allocates_and_grows() {
        let mut m = Ext4Meta::mkfs(1 << 28, 10_000);
        m.mkdir("/d").unwrap();
        let dino = m.resolve("/d").unwrap().2.unwrap();
        let p0 = m.dir_leaf_physical(dino, 0).unwrap();
        assert!(p0 >= m.inode_table_start);
        // Fill the directory so it needs more leaves.
        for i in 0..500u64 {
            m.create_file(&format!("/d/f{i}")).unwrap();
        }
        let leaves = m.dir(dino).unwrap().leaf_blocks();
        assert!(leaves > 1);
        let p_last = m.dir_leaf_physical(dino, leaves - 1).unwrap();
        assert_eq!(p_last - m.dir_leaf_physical(dino, 0).unwrap(), leaves - 1);
    }

    #[test]
    fn components_count() {
        assert_eq!(Ext4Meta::components("/a/b/c"), 3);
        assert_eq!(Ext4Meta::components("a"), 1);
        assert_eq!(Ext4Meta::components("/"), 0);
    }
}
