//! A minimal jbd2-style journal (ordered mode).
//!
//! Metadata mutations (create, extent append) join the running transaction;
//! the transaction commits when it reaches `batch` handles, writing one
//! descriptor block plus the dirtied metadata blocks to the journal region.
//! The write path of `Ext4Fs` drives this and charges the resulting device
//! writes; the read path never touches the journal, mirroring why DLFS
//! ignores journaling entirely for its read-only workload.

use std::collections::BTreeSet;

/// State of the running transaction.
#[derive(Debug)]
pub struct Journal {
    /// Journal region start (fs blocks) on the device.
    region_start: u64,
    /// Journal region length (fs blocks).
    region_len: u64,
    /// Write head within the region (wraps).
    head: u64,
    /// Dirty metadata blocks in the running transaction.
    dirty: BTreeSet<u64>,
    /// Handles joined since the last commit.
    handles: u32,
    /// Commit after this many handles.
    batch: u32,
    commits: u64,
    blocks_logged: u64,
}

/// What a commit must write: (journal_block, count) runs.
#[derive(Debug, PartialEq, Eq)]
pub struct CommitIo {
    /// Starting fs block of the journal write.
    pub start: u64,
    /// Blocks to write (descriptor + metadata + commit record).
    pub blocks: u64,
}

impl Journal {
    pub fn new(region_start: u64, region_len: u64, batch: u32) -> Journal {
        assert!(region_len >= 4, "journal region too small");
        assert!(batch > 0);
        Journal {
            region_start,
            region_len,
            head: 0,
            dirty: BTreeSet::new(),
            handles: 0,
            batch,
            commits: 0,
            blocks_logged: 0,
        }
    }

    /// Join the running transaction, marking `meta_blocks` dirty. Returns
    /// the commit I/O to perform if this handle filled the transaction.
    pub fn handle(&mut self, meta_blocks: &[u64]) -> Option<CommitIo> {
        self.dirty.extend(meta_blocks.iter().copied());
        self.handles += 1;
        if self.handles >= self.batch {
            Some(self.commit())
        } else {
            None
        }
    }

    /// Force a commit of whatever is pending (fsync / unmount).
    pub fn force_commit(&mut self) -> Option<CommitIo> {
        if self.handles == 0 && self.dirty.is_empty() {
            return None;
        }
        Some(self.commit())
    }

    fn commit(&mut self) -> CommitIo {
        // Descriptor block + each dirty metadata block + commit record.
        let blocks = (self.dirty.len() as u64 + 2).min(self.region_len);
        let start = self.region_start + self.head;
        self.head = (self.head + blocks) % self.region_len;
        self.dirty.clear();
        self.handles = 0;
        self.commits += 1;
        self.blocks_logged += blocks;
        CommitIo { start, blocks }
    }

    pub fn commits(&self) -> u64 {
        self.commits
    }

    pub fn blocks_logged(&self) -> u64 {
        self.blocks_logged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_on_batch_boundary() {
        let mut j = Journal::new(1000, 256, 3);
        assert!(j.handle(&[5]).is_none());
        assert!(j.handle(&[6]).is_none());
        let io = j.handle(&[7]).unwrap();
        assert_eq!(io.start, 1000);
        assert_eq!(io.blocks, 5); // descriptor + 3 metadata + commit
        assert_eq!(j.commits(), 1);
    }

    #[test]
    fn dedupes_dirty_blocks() {
        let mut j = Journal::new(0, 64, 2);
        j.handle(&[5, 5, 6]);
        let io = j.handle(&[6]).unwrap();
        assert_eq!(io.blocks, 4); // descriptor + {5,6} + commit
    }

    #[test]
    fn head_wraps_region() {
        let mut j = Journal::new(0, 8, 1);
        let a = j.handle(&[1]).unwrap();
        let b = j.handle(&[2]).unwrap();
        let c = j.handle(&[3]).unwrap();
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 3);
        assert_eq!(c.start, 6);
        let d = j.handle(&[4]).unwrap();
        assert_eq!(d.start, 1); // wrapped
    }

    #[test]
    fn force_commit_flushes_partial() {
        let mut j = Journal::new(0, 64, 10);
        assert!(j.force_commit().is_none());
        j.handle(&[9]);
        let io = j.force_commit().unwrap();
        assert_eq!(io.blocks, 3);
        assert!(j.force_commit().is_none());
    }
}
