//! Bitmap block allocator with next-fit extent allocation, in the spirit of
//! ext4's multi-block allocator: it tries to hand out physically contiguous
//! extents so files map to few extents.

/// Allocates file-system blocks (4 KiB) from a fixed range.
#[derive(Debug)]
pub struct BitmapAllocator {
    bitmap: Vec<u64>,
    first: u64,
    blocks: u64,
    cursor: u64,
    allocated: u64,
}

impl BitmapAllocator {
    /// Manage blocks `[first, first + blocks)`.
    pub fn new(first: u64, blocks: u64) -> Self {
        assert!(blocks > 0);
        BitmapAllocator {
            bitmap: vec![0u64; (blocks as usize).div_ceil(64)],
            first,
            blocks,
            cursor: 0,
            allocated: 0,
        }
    }

    pub fn total(&self) -> u64 {
        self.blocks
    }

    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    pub fn free_blocks(&self) -> u64 {
        self.blocks - self.allocated
    }

    #[inline]
    fn is_set(&self, i: u64) -> bool {
        self.bitmap[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: u64) {
        self.bitmap[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn clear_bit(&mut self, i: u64) {
        self.bitmap[(i / 64) as usize] &= !(1 << (i % 64));
    }

    /// Allocate up to `want` contiguous blocks starting the search at the
    /// allocation cursor (next-fit). Returns `(start_block, len)` with
    /// `1 <= len <= want`, preferring the longest contiguous run available
    /// at the first free position. `None` when completely full.
    pub fn alloc_extent(&mut self, want: u64) -> Option<(u64, u64)> {
        if want == 0 || self.allocated == self.blocks {
            return None;
        }
        // Find the first free bit at or after the cursor, wrapping once.
        let mut idx = None;
        for probe in 0..self.blocks {
            let i = (self.cursor + probe) % self.blocks;
            if !self.is_set(i) {
                idx = Some(i);
                break;
            }
        }
        let start = idx?;
        let mut len = 0;
        while len < want && start + len < self.blocks && !self.is_set(start + len) {
            self.set(start + len);
            len += 1;
        }
        self.cursor = (start + len) % self.blocks;
        self.allocated += len;
        Some((self.first + start, len))
    }

    /// Allocate exactly `want` blocks as a list of extents.
    pub fn alloc_blocks(&mut self, want: u64) -> Option<Vec<(u64, u64)>> {
        if want > self.free_blocks() {
            return None;
        }
        let mut out = Vec::new();
        let mut left = want;
        while left > 0 {
            let (s, l) = self.alloc_extent(left).expect("free space checked");
            out.push((s, l));
            left -= l;
        }
        Some(out)
    }

    /// Free an extent previously returned by `alloc_extent`/`alloc_blocks`.
    pub fn free_extent(&mut self, start: u64, len: u64) {
        assert!(start >= self.first && start + len <= self.first + self.blocks);
        for i in 0..len {
            let bit = start - self.first + i;
            assert!(self.is_set(bit), "double free of block {}", start + i);
            self.clear_bit(bit);
        }
        self.allocated -= len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_contiguous_when_possible() {
        let mut a = BitmapAllocator::new(100, 1000);
        let (s, l) = a.alloc_extent(10).unwrap();
        assert_eq!((s, l), (100, 10));
        let (s2, l2) = a.alloc_extent(5).unwrap();
        assert_eq!((s2, l2), (110, 5));
        assert_eq!(a.allocated(), 15);
    }

    #[test]
    fn fragmented_allocation_splits() {
        let mut a = BitmapAllocator::new(0, 64);
        let _ = a.alloc_blocks(64).unwrap();
        a.free_extent(10, 4);
        a.free_extent(30, 4);
        let exts = a.alloc_blocks(8).unwrap();
        assert_eq!(exts.len(), 2);
        let total: u64 = exts.iter().map(|e| e.1).sum();
        assert_eq!(total, 8);
        assert_eq!(a.free_blocks(), 0);
    }

    #[test]
    fn exhaustion() {
        let mut a = BitmapAllocator::new(0, 8);
        assert!(a.alloc_blocks(9).is_none());
        let _ = a.alloc_blocks(8).unwrap();
        assert!(a.alloc_extent(1).is_none());
    }

    #[test]
    fn free_then_reuse() {
        let mut a = BitmapAllocator::new(0, 16);
        let (s, l) = a.alloc_extent(16).unwrap();
        a.free_extent(s, l);
        assert_eq!(a.free_blocks(), 16);
        // Next-fit wraps around to reuse freed space.
        let (s2, l2) = a.alloc_extent(16).unwrap();
        assert_eq!((s2, l2), (0, 16));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BitmapAllocator::new(0, 8);
        let (s, l) = a.alloc_extent(4).unwrap();
        a.free_extent(s, l);
        a.free_extent(s, l);
    }

    #[test]
    fn many_small_allocations_fill_exactly() {
        let mut a = BitmapAllocator::new(7, 333);
        let mut got = 0;
        while let Some((_, l)) = a.alloc_extent(2) {
            got += l;
        }
        assert_eq!(got, 333);
    }
}
