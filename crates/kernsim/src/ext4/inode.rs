//! Inodes and extent trees.
//!
//! Like ext4, a file's data placement is described by *extents*: runs of
//! contiguous physical blocks covering a range of logical blocks. Lookup is
//! a binary search over the (sorted, non-overlapping) extent list.

/// Bytes reserved per on-disk inode (ext4 default 256).
pub const INODE_SIZE: u64 = 256;

/// One extent: `len` blocks of the file starting at logical block
/// `logical` live at physical blocks `[physical, physical + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    pub logical: u64,
    pub physical: u64,
    pub len: u64,
}

/// File kinds we model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InodeKind {
    File,
    Dir,
}

/// An in-memory inode.
#[derive(Clone, Debug)]
pub struct Inode {
    pub ino: u64,
    pub kind: InodeKind,
    pub size: u64,
    extents: Vec<Extent>,
}

impl Inode {
    pub fn new(ino: u64, kind: InodeKind) -> Inode {
        Inode {
            ino,
            kind,
            size: 0,
            extents: Vec::new(),
        }
    }

    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Number of logical blocks mapped.
    pub fn blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Append a physical run at the current end of file. Merges with the
    /// previous extent when physically adjacent.
    pub fn append_extent(&mut self, physical: u64, len: u64) {
        assert!(len > 0);
        let logical = self.blocks();
        if let Some(last) = self.extents.last_mut() {
            if last.physical + last.len == physical && last.logical + last.len == logical {
                last.len += len;
                return;
            }
        }
        self.extents.push(Extent {
            logical,
            physical,
            len,
        });
    }

    /// Map a logical block to its physical block, or `None` if unmapped.
    pub fn map_block(&self, logical: u64) -> Option<u64> {
        let idx = self
            .extents
            .partition_point(|e| e.logical + e.len <= logical);
        let e = self.extents.get(idx)?;
        if logical >= e.logical && logical < e.logical + e.len {
            Some(e.physical + (logical - e.logical))
        } else {
            None
        }
    }

    /// Map a logical block *range* into maximal physical runs:
    /// `(physical_start, run_blocks)` pairs covering `[start, start+count)`.
    pub fn map_range(&self, start: u64, count: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut lb = start;
        let end = start + count;
        while lb < end {
            let phys = self
                .map_block(lb)
                .unwrap_or_else(|| panic!("unmapped logical block {lb} of ino {}", self.ino));
            // Extend the run as far as this extent allows.
            let idx = self.extents.partition_point(|e| e.logical + e.len <= lb);
            let e = self.extents[idx];
            let run = (e.logical + e.len - lb).min(end - lb);
            match out.last_mut() {
                Some((p, l)) if *p + *l == phys => *l += run,
                _ => out.push((phys, run)),
            }
            lb += run;
        }
        out
    }

    /// Depth of the extent tree ext4 would need (4-ary index over ~340
    /// extents per block); used for lookup cost modelling.
    pub fn extent_tree_depth(&self) -> u32 {
        let n = self.extents.len();
        if n <= 4 {
            0
        } else {
            let mut depth = 1;
            let mut cap = 340usize;
            while cap < n {
                depth += 1;
                cap *= 340;
            }
            depth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(exts: &[(u64, u64)]) -> Inode {
        let mut ino = Inode::new(1, InodeKind::File);
        for &(p, l) in exts {
            ino.append_extent(p, l);
        }
        ino
    }

    #[test]
    fn append_merges_adjacent() {
        let ino = file_with(&[(100, 4), (104, 4)]);
        assert_eq!(ino.extents().len(), 1);
        assert_eq!(
            ino.extents()[0],
            Extent {
                logical: 0,
                physical: 100,
                len: 8
            }
        );
    }

    #[test]
    fn append_keeps_disjoint() {
        let ino = file_with(&[(100, 4), (200, 4)]);
        assert_eq!(ino.extents().len(), 2);
        assert_eq!(ino.blocks(), 8);
    }

    #[test]
    fn map_block_lookup() {
        let ino = file_with(&[(100, 4), (200, 4)]);
        assert_eq!(ino.map_block(0), Some(100));
        assert_eq!(ino.map_block(3), Some(103));
        assert_eq!(ino.map_block(4), Some(200));
        assert_eq!(ino.map_block(7), Some(203));
        assert_eq!(ino.map_block(8), None);
    }

    #[test]
    fn map_range_coalesces_runs() {
        let ino = file_with(&[(100, 4), (104, 2), (300, 4)]);
        // First two appends merged: extents are (0,100,6), (6,300,4).
        assert_eq!(ino.map_range(0, 6), vec![(100, 6)]);
        assert_eq!(ino.map_range(4, 4), vec![(104, 2), (300, 2)]);
        assert_eq!(ino.map_range(6, 4), vec![(300, 4)]);
        assert_eq!(ino.map_range(2, 1), vec![(102, 1)]);
    }

    #[test]
    #[should_panic(expected = "unmapped logical block")]
    fn map_range_past_eof_panics() {
        let ino = file_with(&[(100, 2)]);
        ino.map_range(0, 3);
    }

    #[test]
    fn extent_tree_depth_model() {
        assert_eq!(file_with(&[(0, 1)]).extent_tree_depth(), 0);
        let mut many = Inode::new(1, InodeKind::File);
        for i in 0..400u64 {
            many.append_extent(i * 2, 1); // never adjacent => 400 extents
        }
        assert_eq!(many.extent_tree_depth(), 2);
        let mut few = Inode::new(2, InodeKind::File);
        for i in 0..10u64 {
            few.append_extent(i * 2, 1);
        }
        assert_eq!(few.extent_tree_depth(), 1);
    }
}
