//! An intrusive-list LRU map, used for the page cache, dentry cache and
//! inode cache. O(1) insert/get/evict; implemented on a slab of nodes with
//! index links (no unsafe).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: Option<K>,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct LruMap<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruMap {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) since creation, counting `get`/`get_mut` calls.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (p, n) = (self.nodes[idx].prev, self.nodes[idx].next);
        if p != NIL {
            self.nodes[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                self.nodes[idx].value.as_ref()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or hit counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.nodes[idx].value.as_ref())
    }

    /// Mutable lookup, marking most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                self.nodes[idx].value.as_mut()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert, evicting the LRU entry if at capacity. Returns the evicted
    /// (key, value) pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = Some(value);
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let idx = self.tail;
            debug_assert_ne!(idx, NIL, "capacity>0 but no tail");
            self.unlink(idx);
            let k = self.nodes[idx].key.take().expect("occupied node");
            let v = self.nodes[idx].value.take().expect("occupied node");
            self.map.remove(&k);
            self.free.push(idx);
            Some((k, v))
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i].key = Some(key.clone());
                self.nodes[i].value = Some(value);
                i
            }
            None => {
                self.nodes.push(Node {
                    key: Some(key.clone()),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.nodes[idx].key = None;
        let v = self.nodes[idx].value.take();
        self.free.push(idx);
        v
    }

    /// Drop everything (keeps capacity).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterate (key, value) from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let node = &self.nodes[idx];
            idx = node.next;
            Some((
                node.key.as_ref().expect("linked node occupied"),
                node.value.as_ref().expect("linked node occupied"),
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut lru = LruMap::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.get(&"a"); // a is now MRU
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(lru.contains(&"a"));
        assert!(lru.contains(&"c"));
        assert!(!lru.contains(&"b"));
    }

    #[test]
    fn reinsert_updates_value_without_evicting() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none());
        assert_eq!(lru.peek(&"a"), Some(&10));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut lru = LruMap::new(3);
        lru.insert(1, "x");
        lru.insert(2, "y");
        assert_eq!(lru.remove(&1), Some("x"));
        assert_eq!(lru.remove(&1), None);
        lru.insert(3, "z");
        lru.insert(4, "w");
        assert_eq!(lru.len(), 3);
        assert!(lru.contains(&2) && lru.contains(&3) && lru.contains(&4));
    }

    #[test]
    fn hit_miss_stats() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.get(&"a");
        lru.get(&"nope");
        assert_eq!(lru.stats(), (1, 1));
    }

    #[test]
    fn mru_iteration_order() {
        let mut lru = LruMap::new(3);
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        lru.get(&1);
        let order: Vec<i32> = lru.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruMap::new(1);
        lru.insert("a", 1);
        assert_eq!(lru.insert("b", 2), Some(("a", 1)));
        assert_eq!(lru.get(&"b"), Some(&2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn long_churn_is_consistent() {
        let mut lru = LruMap::new(16);
        for i in 0..10_000u64 {
            lru.insert(i % 47, i);
            assert!(lru.len() <= 16);
        }
        // The last 16 distinct keys inserted must be retrievable.
        let mut found = 0;
        for k in 0..47 {
            if lru.peek(&k).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 16);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruMap::new(4);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(3, 3);
        assert_eq!(lru.get(&3), Some(&3));
    }
}
