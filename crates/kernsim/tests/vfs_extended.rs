//! Tests of the extended VFS surface: readdir, unlink, O_DIRECT reads.

use blocksim::{DeviceConfig, NvmeDevice};
use kernsim::{Ext4Fs, Fd, FsError, FsOptions, KernelCosts, PAGE_SIZE};
use simkit::prelude::*;
use std::sync::Arc;

fn mkfs() -> Arc<Ext4Fs> {
    let dev = NvmeDevice::new(DeviceConfig::optane(256 << 20));
    Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default())
}

#[test]
fn readdir_lists_everything() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        fs.mkdir_p("/d").unwrap();
        for i in 0..250 {
            fs.create_untimed(&format!("/d/f{i:03}"), &[1u8; 100])
                .unwrap();
        }
        let mut names = fs.readdir(rt, "/d").unwrap();
        names.sort();
        assert_eq!(names.len(), 250);
        assert_eq!(names[0], "f000");
        assert_eq!(names[249], "f249");
        assert!(matches!(fs.readdir(rt, "/nope"), Err(FsError::NotFound(_))));
        assert!(matches!(
            fs.readdir(rt, "/d/f000"),
            Err(FsError::NotADirectory(_))
        ));
    });
}

#[test]
fn readdir_cost_scales_with_directory_size() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        fs.mkdir_p("/small").unwrap();
        fs.mkdir_p("/big").unwrap();
        for i in 0..10 {
            fs.create_untimed(&format!("/small/f{i}"), &[0u8; 64])
                .unwrap();
        }
        for i in 0..2000 {
            fs.create_untimed(&format!("/big/f{i}"), &[0u8; 64])
                .unwrap();
        }
        fs.drop_caches();
        let t0 = rt.now();
        fs.readdir(rt, "/small").unwrap();
        let small = rt.now() - t0;
        let t1 = rt.now();
        fs.readdir(rt, "/big").unwrap();
        let big = rt.now() - t1;
        assert!(
            big.as_nanos() > small.as_nanos() * 5,
            "small {small:?} big {big:?}"
        );
    });
}

#[test]
fn unlink_frees_space_and_name() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        let payload = vec![7u8; 1 << 20];
        fs.create_with_size(rt, "/a", &payload).unwrap();
        fs.unlink(rt, "/a").unwrap();
        assert!(matches!(fs.open(rt, "/a"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.unlink(rt, "/a"), Err(FsError::NotFound(_))));
        // The space and the name are reusable.
        fs.create_with_size(rt, "/a", &payload).unwrap();
        let fd = fs.open(rt, "/a").unwrap();
        let mut out = vec![0u8; 1 << 20];
        assert_eq!(fs.pread(rt, fd, 0, &mut out).unwrap(), 1 << 20);
        assert_eq!(out, payload);
        fs.close(rt, fd).unwrap();
    });
}

#[test]
fn unlink_reclaims_all_blocks() {
    Runtime::simulate(0, |rt| {
        // Device sized so that the dataset only fits once: unlink must make
        // the second round succeed.
        let dev = NvmeDevice::new(DeviceConfig::optane(96 << 20));
        let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
        for round in 0..3 {
            for i in 0..10 {
                fs.create_with_size(rt, &format!("/r{round}_f{i}"), &vec![3u8; 4 << 20])
                    .unwrap();
            }
            for i in 0..10 {
                fs.unlink(rt, &format!("/r{round}_f{i}")).unwrap();
            }
        }
    });
}

#[test]
fn o_direct_bypasses_page_cache() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        let payload: Vec<u8> = (0..(64 << 10)).map(|i| (i % 251) as u8).collect();
        fs.create_with_size(rt, "/f", &payload).unwrap();
        fs.drop_caches();
        let fd = fs.open(rt, "/f").unwrap();
        let mut out = vec![0u8; 64 << 10];
        let n = fs.pread_direct(rt, fd, 0, &mut out).unwrap();
        assert_eq!(n, 64 << 10);
        assert_eq!(out, payload);
        // The page cache stayed cold.
        let (hits, _) = fs.page_cache_stats();
        assert_eq!(hits, 0);
        // Repeat read costs the same (no cache effect), unlike buffered.
        let t0 = rt.now();
        fs.pread_direct(rt, fd, 0, &mut out).unwrap();
        let first = rt.now() - t0;
        let t1 = rt.now();
        fs.pread_direct(rt, fd, 0, &mut out).unwrap();
        let second = rt.now() - t1;
        assert_eq!(first.as_nanos(), second.as_nanos());
        // Unaligned requests are rejected, as the kernel does.
        assert!(fs.pread_direct(rt, fd, 13, &mut out).is_err());
        let mut odd = vec![0u8; PAGE_SIZE as usize + 1];
        assert!(fs.pread_direct(rt, fd, 0, &mut odd).is_err());
        fs.close(rt, fd).unwrap();
    });
}

#[test]
fn o_direct_is_faster_than_buffered_cold_read() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        let payload = vec![9u8; 1 << 20];
        fs.create_with_size(rt, "/big", &payload).unwrap();
        fs.drop_caches();
        let fd = fs.open(rt, "/big").unwrap();
        let mut out = vec![0u8; 1 << 20];
        let t0 = rt.now();
        fs.pread(rt, fd, 0, &mut out).unwrap();
        let buffered = rt.now() - t0;
        fs.drop_caches();
        let t1 = rt.now();
        fs.pread_direct(rt, fd, 0, &mut out).unwrap();
        let direct = rt.now() - t1;
        // O_DIRECT skips the copy_to_user and page-cache population.
        assert!(
            direct < buffered,
            "direct {direct:?} should beat buffered {buffered:?}"
        );
        fs.close(rt, fd).unwrap();
    });
}

#[test]
fn sequential_reads_trigger_readahead() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        let payload = vec![5u8; 4 << 20];
        fs.create_with_size(rt, "/stream", &payload).unwrap();
        fs.drop_caches();
        let fd = fs.open(rt, "/stream").unwrap();
        let mut chunk = vec![0u8; 64 << 10];
        // Sequential scan of the whole file.
        let mut off = 0u64;
        while off < 4 << 20 {
            let n = fs.pread(rt, fd, off, &mut chunk).unwrap();
            off += n as u64;
        }
        let (hits, misses) = fs.page_cache_stats();
        // With readahead, most page lookups after the window warms are hits.
        assert!(
            hits > misses * 3,
            "readahead should make sequential reads cache-hit: {hits} hits / {misses} misses"
        );
        fs.close(rt, fd).unwrap();
    });
}

#[test]
fn sequential_scan_beats_random_reads_per_byte() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        let payload = vec![7u8; 8 << 20];
        fs.create_with_size(rt, "/f", &payload).unwrap();
        fs.drop_caches();
        let fd = fs.open(rt, "/f").unwrap();
        let mut buf = vec![0u8; 64 << 10];
        let t0 = rt.now();
        let mut off = 0u64;
        while off < 8 << 20 {
            off += fs.pread(rt, fd, off, &mut buf).unwrap() as u64;
        }
        let seq = (rt.now() - t0).as_secs_f64();
        fs.drop_caches();
        // Random 64K reads covering the same bytes.
        let mut rng = simkit::rng::SplitMix64::new(1);
        let mut order: Vec<u64> = (0..128).collect();
        rng.shuffle(&mut order);
        let t1 = rt.now();
        for &i in &order {
            fs.pread(rt, fd, i * (64 << 10), &mut buf).unwrap();
        }
        let rnd = (rt.now() - t1).as_secs_f64();
        assert!(seq < rnd, "sequential {seq} should beat random {rnd}");
        fs.close(rt, fd).unwrap();
    });
}

#[test]
fn fsync_commits_the_journal() {
    Runtime::simulate(0, |rt| {
        let fs = mkfs();
        // A handful of creates join the running transaction (batch = 32, so
        // nothing commits on its own).
        for i in 0..5 {
            fs.create_with_size(rt, &format!("/j{i}"), &[1u8; 128])
                .unwrap();
        }
        let (commits_before, _) = fs.journal_stats();
        let fd = fs.open(rt, "/j0").unwrap();
        fs.fsync(rt, fd).unwrap();
        let (commits_after, logged) = fs.journal_stats();
        assert_eq!(commits_after, commits_before + 1);
        assert!(logged > 0);
        // fsync with nothing pending is a no-op commit-wise.
        fs.fsync(rt, fd).unwrap();
        assert_eq!(fs.journal_stats().0, commits_after);
        fs.close(rt, fd).unwrap();
        assert!(fs.fsync(rt, Fd(999)).is_err());
    });
}
