//! Randomized property tests for kernsim's data structures: the block
//! allocator, extent trees, LRU, and end-to-end file content integrity.
//! Cases come from seeded [`SplitMix64`] streams so failures replay exactly.

use blocksim::{DeviceConfig, NvmeDevice};
use kernsim::ext4::alloc::BitmapAllocator;
use kernsim::ext4::inode::{Inode, InodeKind};
use kernsim::lru::LruMap;
use kernsim::{Ext4Fs, FsOptions, KernelCosts};
use simkit::prelude::*;

const CASES: u64 = 48;

#[test]
fn allocator_never_double_allocates() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xA110, case);
        let n = g.range(1, 120) as usize;
        let ops: Vec<(u64, bool)> = (0..n).map(|_| (g.range(1, 50), g.below(2) == 1)).collect();
        let mut a = BitmapAllocator::new(10, 512);
        let mut held: Vec<(u64, u64)> = Vec::new();
        for (want, free_first) in ops {
            if free_first && !held.is_empty() {
                let (s, l) = held.swap_remove(0);
                a.free_extent(s, l);
            }
            if let Some(exts) = a.alloc_blocks(want) {
                for (s, l) in exts {
                    // No overlap with anything currently held.
                    for &(hs, hl) in &held {
                        assert!(
                            s + l <= hs || hs + hl <= s,
                            "overlap: ({s},{l}) vs ({hs},{hl})"
                        );
                    }
                    held.push((s, l));
                }
            }
            let held_total: u64 = held.iter().map(|h| h.1).sum();
            assert_eq!(held_total, a.allocated());
        }
    }
}

#[test]
fn extent_tree_maps_consistently() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xE47E, case);
        let n = g.range(1, 40) as usize;
        let lens: Vec<u64> = (0..n).map(|_| g.range(1, 20)).collect();
        let mut ino = Inode::new(1, InodeKind::File);
        let mut phys = 100u64;
        let mut expect: Vec<u64> = Vec::new(); // logical block -> physical
        for len in lens {
            ino.append_extent(phys, len);
            for i in 0..len {
                expect.push(phys + i);
            }
            phys += len + 7; // gap so extents don't merge
        }
        for (lb, &pb) in expect.iter().enumerate() {
            assert_eq!(ino.map_block(lb as u64), Some(pb));
        }
        assert_eq!(ino.map_block(expect.len() as u64), None);
        // map_range over random windows agrees with per-block mapping.
        let n = expect.len() as u64;
        for (start, count) in [(0, n), (n / 3, n / 2), (n.saturating_sub(1), 1)] {
            if count == 0 {
                continue;
            }
            let runs = ino.map_range(start, count.min(n - start).max(1));
            let flat: Vec<u64> = runs
                .iter()
                .flat_map(|&(p, l)| (0..l).map(move |i| p + i))
                .collect();
            let want: Vec<u64> =
                expect[start as usize..(start + count.min(n - start).max(1)) as usize].to_vec();
            assert_eq!(flat, want);
        }
    }
}

#[test]
fn lru_matches_reference_model() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x14B0, case);
        let cap = g.range(1, 16) as usize;
        let n = g.range(1, 300) as usize;
        let ops: Vec<(u8, bool)> = (0..n)
            .map(|_| (g.below(40) as u8, g.below(2) == 1))
            .collect();
        let mut lru = LruMap::new(cap);
        // Reference: vec of keys, front = MRU.
        let mut model: Vec<(u8, u64)> = Vec::new();
        for (i, (key, is_get)) in ops.into_iter().enumerate() {
            if is_get {
                let got = lru.get(&key).copied();
                let want = model.iter().position(|(k, _)| *k == key).map(|p| {
                    let e = model.remove(p);
                    model.insert(0, e);
                    model[0].1
                });
                assert_eq!(got, want);
            } else {
                lru.insert(key, i as u64);
                if let Some(p) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(p);
                } else if model.len() >= cap {
                    model.pop();
                }
                model.insert(0, (key, i as u64));
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}

#[test]
fn files_roundtrip_any_size() {
    for case in 0..12 {
        let mut g = SplitMix64::derive(0xF11E, case);
        let n = g.range(1, 12) as usize;
        let sizes: Vec<usize> = (0..n).map(|_| g.range(1, 40_000) as usize).collect();
        Runtime::simulate(0, |rt| {
            let dev = NvmeDevice::new(DeviceConfig::optane(256 << 20));
            let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
            fs.mkdir_p("/p").unwrap();
            let payloads: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| (0..s).map(|b| ((b * 31 + i * 7) % 251) as u8).collect())
                .collect();
            for (i, p) in payloads.iter().enumerate() {
                fs.create_with_size(rt, &format!("/p/f{i}"), p).unwrap();
            }
            fs.drop_caches();
            for (i, p) in payloads.iter().enumerate() {
                let fd = fs.open(rt, &format!("/p/f{i}")).unwrap();
                let mut out = vec![0u8; p.len()];
                assert_eq!(fs.pread(rt, fd, 0, &mut out).unwrap(), p.len());
                assert_eq!(&out, p, "file {i} corrupted");
                fs.close(rt, fd).unwrap();
            }
        });
    }
}
