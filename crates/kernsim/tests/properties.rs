//! Property-based tests for kernsim's data structures: the block
//! allocator, extent trees, LRU, and end-to-end file content integrity.

use blocksim::{DeviceConfig, NvmeDevice};
use kernsim::ext4::alloc::BitmapAllocator;
use kernsim::ext4::inode::{Inode, InodeKind};
use kernsim::lru::LruMap;
use kernsim::{Ext4Fs, FsOptions, KernelCosts};
use proptest::prelude::*;
use simkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocator_never_double_allocates(
        ops in prop::collection::vec((1u64..50, any::<bool>()), 1..120)
    ) {
        let mut a = BitmapAllocator::new(10, 512);
        let mut held: Vec<(u64, u64)> = Vec::new();
        for (want, free_first) in ops {
            if free_first && !held.is_empty() {
                let (s, l) = held.swap_remove(0);
                a.free_extent(s, l);
            }
            if let Some(exts) = a.alloc_blocks(want) {
                for (s, l) in exts {
                    // No overlap with anything currently held.
                    for &(hs, hl) in &held {
                        prop_assert!(s + l <= hs || hs + hl <= s,
                            "overlap: ({s},{l}) vs ({hs},{hl})");
                    }
                    held.push((s, l));
                }
            }
            let held_total: u64 = held.iter().map(|h| h.1).sum();
            prop_assert_eq!(held_total, a.allocated());
        }
    }

    #[test]
    fn extent_tree_maps_consistently(runs in prop::collection::vec(1u64..20, 1..40)) {
        let mut ino = Inode::new(1, InodeKind::File);
        let mut phys = 100u64;
        let mut expect: Vec<u64> = Vec::new(); // logical block -> physical
        for len in runs {
            ino.append_extent(phys, len);
            for i in 0..len {
                expect.push(phys + i);
            }
            phys += len + 7; // gap so extents don't merge
        }
        for (lb, &pb) in expect.iter().enumerate() {
            prop_assert_eq!(ino.map_block(lb as u64), Some(pb));
        }
        prop_assert_eq!(ino.map_block(expect.len() as u64), None);
        // map_range over random windows agrees with per-block mapping.
        let n = expect.len() as u64;
        for (start, count) in [(0, n), (n / 3, n / 2), (n.saturating_sub(1), 1)] {
            if count == 0 { continue; }
            let runs = ino.map_range(start, count.min(n - start).max(1));
            let flat: Vec<u64> = runs
                .iter()
                .flat_map(|&(p, l)| (0..l).map(move |i| p + i))
                .collect();
            let want: Vec<u64> =
                expect[start as usize..(start + count.min(n - start).max(1)) as usize].to_vec();
            prop_assert_eq!(flat, want);
        }
    }

    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec((0u8..40, any::<bool>()), 1..300),
        cap in 1usize..16,
    ) {
        let mut lru = LruMap::new(cap);
        // Reference: vec of keys, front = MRU.
        let mut model: Vec<(u8, u64)> = Vec::new();
        for (i, (key, is_get)) in ops.into_iter().enumerate() {
            if is_get {
                let got = lru.get(&key).copied();
                let want = model.iter().position(|(k, _)| *k == key).map(|p| {
                    let e = model.remove(p);
                    model.insert(0, e);
                    model[0].1
                });
                prop_assert_eq!(got, want);
            } else {
                lru.insert(key, i as u64);
                if let Some(p) = model.iter().position(|(k, _)| *k == key) {
                    model.remove(p);
                } else if model.len() >= cap {
                    model.pop();
                }
                model.insert(0, (key, i as u64));
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    #[test]
    fn files_roundtrip_any_size(sizes in prop::collection::vec(1usize..40_000, 1..12)) {
        Runtime::simulate(0, |rt| {
            let dev = NvmeDevice::new(DeviceConfig::optane(256 << 20));
            let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
            fs.mkdir_p("/p").unwrap();
            let payloads: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| (0..s).map(|b| ((b * 31 + i * 7) % 251) as u8).collect())
                .collect();
            for (i, p) in payloads.iter().enumerate() {
                fs.create_with_size(rt, &format!("/p/f{i}"), p).unwrap();
            }
            fs.drop_caches();
            for (i, p) in payloads.iter().enumerate() {
                let fd = fs.open(rt, &format!("/p/f{i}")).unwrap();
                let mut out = vec![0u8; p.len()];
                assert_eq!(fs.pread(rt, fd, 0, &mut out).unwrap(), p.len());
                assert_eq!(&out, p, "file {i} corrupted");
                fs.close(rt, fd).unwrap();
            }
        });
    }
}
