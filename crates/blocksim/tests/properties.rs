//! Randomized property tests for blocksim: storage roundtrips at arbitrary
//! offsets, DMA-pool accounting under arbitrary alloc/free interleavings,
//! device timing monotonicity, and fault-injector statistics. Cases come
//! from seeded [`SplitMix64`] streams so failures replay exactly.

use blocksim::{
    covering_blocks, DeviceConfig, DmaPool, FaultInjector, NvmeDevice, NvmeTarget, Storage,
    BLOCK_SIZE,
};
use simkit::prelude::*;

const CASES: u64 = 48;

#[test]
fn storage_scattered_writes_read_back() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0x570A, case);
        let n = g.range(1, 20) as usize;
        let writes: Vec<(u64, usize)> = (0..n)
            .map(|_| (g.below(1_000_000), g.range(1, 5000) as usize))
            .collect();
        let s = Storage::new(2 << 20);
        // Apply writes in order; remember a reference model.
        let mut model = vec![0u8; 2 << 20];
        for (i, &(off, len)) in writes.iter().enumerate() {
            let off = off % ((2 << 20) - len as u64);
            let data: Vec<u8> = (0..len).map(|j| ((i * 13 + j) % 251) as u8).collect();
            s.write_at(off, &data);
            model[off as usize..off as usize + len].copy_from_slice(&data);
        }
        // Random probes agree with the model.
        for &(off, len) in writes.iter() {
            let off = off % ((2 << 20) - len as u64);
            let mut out = vec![0u8; len];
            s.read_at(off, &mut out);
            assert_eq!(&out[..], &model[off as usize..off as usize + len]);
        }
    }
}

#[test]
fn dma_pool_conserves_chunks() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xD0A7, case);
        let n = g.range(1, 60) as usize;
        let ops: Vec<(u64, bool)> = (0..n)
            .map(|_| (g.range(1, 600_000), g.below(2) == 1))
            .collect();
        let pool_chunks = 32;
        let chunk = 64 << 10;
        let pool = DmaPool::new(chunk, pool_chunks);
        let mut held: Vec<Vec<blocksim::DmaBuf>> = Vec::new();
        let mut held_chunks = 0usize;
        for (len, free_first) in ops {
            if free_first && !held.is_empty() {
                let bufs = held.swap_remove(0);
                held_chunks -= bufs.len();
                for b in bufs {
                    pool.free(b);
                }
            }
            let need = (len as usize).div_ceil(chunk).max(1);
            if pool.available() >= need {
                let mut bufs = Vec::new();
                for _ in 0..need {
                    bufs.push(pool.alloc().expect("availability checked"));
                }
                held_chunks += bufs.len();
                held.push(bufs);
            }
            assert_eq!(pool.available() + held_chunks, pool_chunks);
        }
    }
}

#[test]
fn covering_blocks_covers() {
    for case in 0..256 {
        let mut g = SplitMix64::derive(0xC0B5, case);
        let offset = g.below(1_000_000);
        let len = g.range(1, 100_000);
        let (slba, nblocks, head) = covering_blocks(offset, len);
        // The covering range contains [offset, offset+len).
        assert!(slba * BLOCK_SIZE <= offset);
        assert!((slba + nblocks as u64) * BLOCK_SIZE >= offset + len);
        assert_eq!(slba * BLOCK_SIZE + head as u64, offset);
        // Minimality: one block fewer would not cover.
        assert!((slba + nblocks as u64 - 1) * BLOCK_SIZE < offset + len);
    }
}

#[test]
fn device_completion_time_monotone_in_size() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xDE71, case);
        let small = g.range(1, 64) as u32;
        let extra = g.range(1, 1024) as u32;
        Runtime::simulate(0, |rt| {
            let d1 = NvmeDevice::new(DeviceConfig::optane(64 << 20));
            let t_small = d1.reserve_read(rt.now(), 0, small);
            let d2 = NvmeDevice::new(DeviceConfig::optane(64 << 20));
            let t_large = d2.reserve_read(rt.now(), 0, small + extra);
            assert!(t_small <= t_large, "{t_small:?} vs {t_large:?}");
        });
    }
}

#[test]
fn fault_rates_track_configuration() {
    for case in 0..CASES {
        let mut g = SplitMix64::derive(0xFA17, case);
        let ppm = g.below(500_000) as u32;
        let seed = g.below(1000);
        let f = FaultInjector::new(seed).with_read_failures(ppm);
        let n = 8_000u32;
        let fails = (0..n).filter(|_| !f.decide(false).status.is_ok()).count() as f64;
        let expect = ppm as f64 / 1_000_000.0 * n as f64;
        // Within 5 sigma of a binomial.
        let sigma = (n as f64 * (ppm as f64 / 1e6) * (1.0 - ppm as f64 / 1e6)).sqrt();
        assert!(
            (fails - expect).abs() <= 5.0 * sigma + 1.0,
            "fails {fails} expect {expect} sigma {sigma}"
        );
    }
}
