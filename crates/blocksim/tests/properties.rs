//! Property-based tests for blocksim: storage roundtrips at arbitrary
//! offsets, DMA-pool accounting under arbitrary alloc/free interleavings,
//! device timing monotonicity, and fault-injector statistics.

use blocksim::{
    covering_blocks, DeviceConfig, DmaPool, FaultInjector, NvmeDevice, NvmeTarget, Storage,
    BLOCK_SIZE,
};
use proptest::prelude::*;
use simkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storage_scattered_writes_read_back(
        writes in prop::collection::vec((0u64..1_000_000, 1usize..5000), 1..20)
    ) {
        let s = Storage::new(2 << 20);
        // Apply writes in order; remember a reference model.
        let mut model = vec![0u8; 2 << 20];
        for (i, &(off, len)) in writes.iter().enumerate() {
            let off = off % ((2 << 20) - len as u64);
            let data: Vec<u8> = (0..len).map(|j| ((i * 13 + j) % 251) as u8).collect();
            s.write_at(off, &data);
            model[off as usize..off as usize + len].copy_from_slice(&data);
        }
        // Random probes agree with the model.
        for &(off, len) in writes.iter() {
            let off = off % ((2 << 20) - len as u64);
            let mut out = vec![0u8; len];
            s.read_at(off, &mut out);
            prop_assert_eq!(&out[..], &model[off as usize..off as usize + len]);
        }
    }

    #[test]
    fn dma_pool_conserves_chunks(
        ops in prop::collection::vec((1u64..600_000, any::<bool>()), 1..60)
    ) {
        let pool_chunks = 32;
        let chunk = 64 << 10;
        let pool = DmaPool::new(chunk, pool_chunks);
        let mut held: Vec<Vec<blocksim::DmaBuf>> = Vec::new();
        let mut held_chunks = 0usize;
        for (len, free_first) in ops {
            if free_first && !held.is_empty() {
                let bufs = held.swap_remove(0);
                held_chunks -= bufs.len();
                for b in bufs {
                    pool.free(b);
                }
            }
            let need = (len as usize).div_ceil(chunk).max(1);
            if pool.available() >= need {
                let mut bufs = Vec::new();
                for _ in 0..need {
                    bufs.push(pool.alloc().expect("availability checked"));
                }
                held_chunks += bufs.len();
                held.push(bufs);
            }
            prop_assert_eq!(pool.available() + held_chunks, pool_chunks);
        }
    }

    #[test]
    fn covering_blocks_covers(offset in 0u64..1_000_000, len in 1u64..100_000) {
        let (slba, nblocks, head) = covering_blocks(offset, len);
        // The covering range contains [offset, offset+len).
        prop_assert!(slba * BLOCK_SIZE <= offset);
        prop_assert!((slba + nblocks as u64) * BLOCK_SIZE >= offset + len);
        prop_assert_eq!(slba * BLOCK_SIZE + head as u64, offset);
        // Minimality: one block fewer would not cover.
        prop_assert!((slba + nblocks as u64 - 1) * BLOCK_SIZE < offset + len);
    }

    #[test]
    fn device_completion_time_monotone_in_size(
        small in 1u32..64,
        extra in 1u32..1024,
    ) {
        Runtime::simulate(0, |rt| {
            let d1 = NvmeDevice::new(DeviceConfig::optane(64 << 20));
            let t_small = d1.reserve_read(rt.now(), 0, small);
            let d2 = NvmeDevice::new(DeviceConfig::optane(64 << 20));
            let t_large = d2.reserve_read(rt.now(), 0, small + extra);
            assert!(t_small <= t_large, "{t_small:?} vs {t_large:?}");
        });
    }

    #[test]
    fn fault_rates_track_configuration(ppm in 0u32..500_000, seed in 0u64..1000) {
        let f = FaultInjector::new(seed).with_read_failures(ppm);
        let n = 8_000u32;
        let fails = (0..n)
            .filter(|_| !f.decide(false).status.is_ok())
            .count() as f64;
        let expect = ppm as f64 / 1_000_000.0 * n as f64;
        // Within 5 sigma of a binomial.
        let sigma = (n as f64 * (ppm as f64 / 1e6) * (1.0 - ppm as f64 / 1e6)).sqrt();
        prop_assert!(
            (fails - expect).abs() <= 5.0 * sigma + 1.0,
            "fails {fails} expect {expect} sigma {sigma}"
        );
    }
}
