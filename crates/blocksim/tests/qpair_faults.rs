//! Qpair-level fault and ordering coverage.

use std::sync::Arc;

use blocksim::{CmdStatus, DeviceConfig, DmaBuf, FaultInjector, IoQPair, NvmeDevice, NvmeTarget};
use simkit::prelude::*;

fn dev() -> Arc<NvmeDevice> {
    NvmeDevice::new(DeviceConfig::optane(64 << 20))
}

#[test]
fn failed_read_does_not_dma() {
    Runtime::simulate(0, |rt| {
        let d = dev();
        d.storage().write_at(0, &[0xAAu8; 512]);
        // Fail every read.
        d.set_faults(FaultInjector::new(1).with_read_failures(1_000_000));
        let mut qp = IoQPair::new(d.clone(), 8);
        let buf = DmaBuf::standalone(512);
        qp.submit_read(rt, 1, 0, 1, buf.clone(), 0).unwrap();
        let comps = qp.drain(rt, Dur::nanos(50));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].status, CmdStatus::MediaError);
        // The buffer stayed untouched: no DMA on a failed command.
        buf.with(|d| assert!(d.iter().all(|&b| b == 0)));
    });
}

#[test]
fn failed_write_does_not_modify_storage() {
    Runtime::simulate(0, |rt| {
        let d = dev();
        d.storage().write_at(0, &[0x11u8; 512]);
        d.set_faults(FaultInjector::new(2).with_write_failures(1_000_000));
        let mut qp = IoQPair::new(d.clone(), 8);
        let buf = DmaBuf::standalone(512);
        buf.with_mut(|b| b.fill(0xFF));
        qp.submit_write(rt, 1, 0, 1, buf, 0).unwrap();
        let comps = qp.drain(rt, Dur::nanos(50));
        assert_eq!(comps[0].status, CmdStatus::MediaError);
        let mut out = [0u8; 512];
        d.storage().read_at(0, &mut out);
        assert!(out.iter().all(|&b| b == 0x11), "payload must not land");
    });
}

#[test]
fn latency_spikes_delay_completion() {
    Runtime::simulate(0, |rt| {
        let base = {
            let d = dev();
            let mut qp = IoQPair::new(d, 8);
            let buf = DmaBuf::standalone(512);
            qp.submit_read(rt, 1, 0, 1, buf, 0).unwrap();
            qp.next_completion_at().unwrap().nanos() - rt.now().nanos()
        };
        let spiked = {
            let d = dev();
            d.set_faults(FaultInjector::new(3).with_latency_spikes(1_000_000, Dur::millis(1)));
            let mut qp = IoQPair::new(d, 8);
            let buf = DmaBuf::standalone(512);
            qp.submit_read(rt, 1, 0, 1, buf, 0).unwrap();
            qp.next_completion_at().unwrap().nanos() - rt.now().nanos()
        };
        assert_eq!(spiked, base + 1_000_000);
    });
}

#[test]
fn completions_emerge_in_device_finish_order() {
    // Find a fault seed whose first decision is a latency spike and whose
    // second is clean: the first-submitted command then finishes *after*
    // the second, and process_completions must report them in completion
    // order, not submission order.
    let seed = (0..1000u64)
        .find(|&s| {
            let probe = FaultInjector::new(s).with_latency_spikes(300_000, Dur::millis(1));
            let first = !probe.decide(false).extra_latency.is_zero();
            let second = probe.decide(false).extra_latency.is_zero();
            first && second
        })
        .expect("some seed produces (spike, clean)");
    Runtime::simulate(0, |rt| {
        let d = dev();
        d.set_faults(FaultInjector::new(seed).with_latency_spikes(300_000, Dur::millis(1)));
        let mut qp = IoQPair::new(d, 32);
        let a = DmaBuf::standalone(512);
        let b = DmaBuf::standalone(512);
        qp.submit_read(rt, 100, 0, 1, a, 0).unwrap(); // spiked
        qp.submit_read(rt, 200, 64, 1, b, 0).unwrap(); // clean
        let comps = qp.drain(rt, Dur::nanos(50));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].id, 200, "clean read completes first");
        assert_eq!(comps[1].id, 100);
        assert!(comps[0].done <= comps[1].done);
    });
}

#[test]
fn counters_track_lifecycle() {
    Runtime::simulate(0, |rt| {
        let d = dev();
        let mut qp = IoQPair::new(d, 4);
        for i in 0..4 {
            let b = DmaBuf::standalone(512);
            qp.submit_read(rt, i, i, 1, b, 0).unwrap();
        }
        assert_eq!(qp.counters(), (4, 0));
        qp.drain(rt, Dur::nanos(50));
        assert_eq!(qp.counters(), (4, 4));
        assert_eq!(qp.outstanding(), 0);
    });
}

#[test]
fn remote_target_propagates_faults() {
    Runtime::simulate(0, |rt| {
        let cluster = Arc::new(fabric::Cluster::new(2, fabric::FabricConfig::default()));
        let d = NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10)));
        d.set_faults(FaultInjector::new(5).with_read_failures(1_000_000));
        let tgt = fabric::NvmeOfTarget::new(1, d, fabric::TargetConfig::default());
        let remote = fabric::connect(cluster, 0, tgt);
        assert_eq!(
            remote.fault_decide(rt.now(), false).status,
            CmdStatus::MediaError
        );
        let mut qp = IoQPair::new(remote, 4);
        let b = DmaBuf::standalone(512);
        qp.submit_read(rt, 9, 0, 1, b, 0).unwrap();
        let comps = qp.drain(rt, Dur::nanos(50));
        assert_eq!(comps[0].status, CmdStatus::MediaError);
    });
}

/// A target that drops every command on the wire: the initiator sees
/// nothing until its I/O timeout, then a transport error.
struct DroppingTarget {
    inner: Arc<NvmeDevice>,
    detect_after: Dur,
}

impl NvmeTarget for DroppingTarget {
    fn reserve_read(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        self.inner.reserve_read(now, slba, nblocks)
    }
    fn reserve_write(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        self.inner.reserve_write(now, slba, nblocks)
    }
    fn dma_read(&self, slba: u64, dst: &mut [u8]) {
        self.inner.dma_read(slba, dst)
    }
    fn dma_write(&self, slba: u64, src: &[u8]) {
        self.inner.dma_write(slba, src)
    }
    fn max_queue_depth(&self) -> usize {
        self.inner.max_queue_depth()
    }
    fn blocks(&self) -> u64 {
        self.inner.blocks()
    }
    fn describe(&self) -> String {
        format!("dropping({})", self.inner.describe())
    }
    fn fault_decide(&self, _now: Time, _is_write: bool) -> blocksim::FaultOutcome {
        blocksim::FaultOutcome {
            status: CmdStatus::TransportError,
            extra_latency: self.detect_after,
        }
    }
}

#[test]
fn transport_errors_count_as_timeouts_and_skip_dma() {
    Runtime::simulate(0, |rt| {
        let d = dev();
        d.storage().write_at(0, &[0x77u8; 512]);
        let target = Arc::new(DroppingTarget {
            inner: d,
            detect_after: Dur::micros(50),
        });
        let reg = simkit::telemetry::Registry::new();
        let mut qp = IoQPair::new(target, 4);
        qp.attach_telemetry(&reg.scoped("blocksim.dev0"));
        let buf = DmaBuf::standalone(512);
        let t0 = rt.now();
        qp.submit_read(rt, 1, 0, 1, buf.clone(), 0).unwrap();
        let comps = qp.drain(rt, Dur::micros(1));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].status, CmdStatus::TransportError);
        assert!(rt.now() - t0 >= Dur::micros(50), "loss detected early");
        buf.with(|d| assert!(d.iter().all(|&b| b == 0), "no DMA on a drop"));
        let m = reg.snapshot();
        assert_eq!(m.counter("blocksim.dev0.timeouts"), 1);
        assert_eq!(m.counter("blocksim.dev0.media_errors"), 0);
    });
}
