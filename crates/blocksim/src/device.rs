//! The simulated NVMe device and the `NvmeTarget` abstraction.
//!
//! A device is a *passive timed object*: submitting a command reserves
//! capacity on the device's internal resources (command pipeline, media
//! channels, shared data path) and yields the exact virtual instant the
//! command completes. The submitter — a local qpair or a remote NVMe-oF
//! client — schedules the completion for delivery at that instant. This
//! reservation style keeps the simulation deterministic and avoids spending
//! a scheduler participant per device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simkit::resource::{Link, Servers};
use simkit::time::{Dur, Time};

use crate::config::{DeviceConfig, BLOCK_SIZE};
use crate::fault::{FaultInjector, FaultOutcome};
use crate::storage::Storage;

/// Anything a qpair can issue block commands to: a local device, or (in the
/// `fabric` crate) a remote device behind an NVMe-oF target.
pub trait NvmeTarget: Send + Sync {
    /// Reserve service for a read of `nblocks` logical blocks starting at
    /// `slba`, arriving at `now`; returns the completion instant.
    fn reserve_read(&self, now: Time, slba: u64, nblocks: u32) -> Time;

    /// Reserve service for a write.
    fn reserve_write(&self, now: Time, slba: u64, nblocks: u32) -> Time;

    /// Move the data of a completed read into `dst` (the simulated DMA).
    fn dma_read(&self, slba: u64, dst: &mut [u8]);

    /// Move `src` into the device (write payload).
    fn dma_write(&self, slba: u64, src: &[u8]);

    /// Queue depth limit the target supports.
    fn max_queue_depth(&self) -> usize;

    /// Total addressable blocks.
    fn blocks(&self) -> u64;

    /// Human-readable identification.
    fn describe(&self) -> String;

    /// Decide the fate of a command submitted at `now` (fault injection);
    /// the default is a healthy device. Remote targets combine the backing
    /// device's outcome with fabric-level faults, which is why the decision
    /// is timestamped: link flaps and target crash windows are schedules in
    /// virtual time.
    fn fault_decide(&self, _now: Time, _is_write: bool) -> FaultOutcome {
        FaultOutcome::NONE
    }

    /// Range-aware fault decision: like [`NvmeTarget::fault_decide`] but
    /// the command's block range is known, so persistent bad extents can
    /// fail exactly the reads that touch them. The default delegates to the
    /// range-oblivious decision (identical draw stream).
    fn fault_decide_range(
        &self,
        now: Time,
        is_write: bool,
        _slba: u64,
        _nblocks: u32,
    ) -> FaultOutcome {
        self.fault_decide(now, is_write)
    }

    /// Does the range overlap a persistent fault (sticky bad extent or
    /// silent corruption)? Draw-free — scrubbers and offline checkers use
    /// it to locate latent damage without perturbing fault replay.
    fn probe_extent(&self, _slba: u64, _nblocks: u32) -> bool {
        false
    }

    /// Reserve a storage-side offload batch: read every extent and run its
    /// post-read compute (decode/augment) *where the data lives*, then ship
    /// one dense response of `response_bytes`. Returns the instant the
    /// assembled response is available to the submitter.
    ///
    /// The default models a local target: the extent reads pipeline through
    /// the device like ordinary commands and a single implicit compute
    /// context processes each extent as its read lands; there is no fabric,
    /// so `response_bytes` never touches a wire. Remote targets override
    /// this with capsule/processing/NIC stages and a real compute pool.
    fn reserve_offload(&self, now: Time, extents: &[OffloadExtent], _response_bytes: u64) -> Time {
        let mut cpu = now;
        for e in extents {
            let read_done = self.reserve_read(now, e.slba, e.nblocks);
            cpu = cpu.max(read_done) + e.compute;
        }
        cpu
    }
}

/// One extent of a storage-side offload batch: read `nblocks` logical
/// blocks from `slba`, then spend `compute` on the serving side (frame
/// decode, augmentation, verification) before the result can ship.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OffloadExtent {
    pub slba: u64,
    pub nblocks: u32,
    /// Post-read compute for this extent, charged to the target.
    pub compute: Dur,
}

/// A simulated local NVMe SSD.
pub struct NvmeDevice {
    config: DeviceConfig,
    storage: Storage,
    /// Media channels (latency term; bounds IOPS).
    media: Servers,
    /// Shared internal data path (bandwidth term).
    bus: Link,
    /// Command pipeline for fixed per-command overhead.
    pipeline: Servers,
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    faults: simkit::plock::Mutex<Option<FaultInjector>>,
}

impl std::fmt::Debug for NvmeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeDevice")
            .field("name", &self.config.name)
            .field("capacity", &self.config.capacity)
            .finish()
    }
}

impl NvmeDevice {
    pub fn new(config: DeviceConfig) -> Arc<NvmeDevice> {
        config.validate().expect("invalid device config");
        Arc::new(NvmeDevice {
            storage: Storage::new(config.capacity),
            media: Servers::new(config.channels),
            bus: Link::new(config.bytes_per_sec, simkit::time::Dur::ZERO),
            pipeline: Servers::new(1),
            config,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            faults: simkit::plock::Mutex::new(None),
        })
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    fn check_range(&self, slba: u64, nblocks: u32) {
        let end = slba + nblocks as u64;
        assert!(
            end <= self.config.blocks(),
            "I/O past end of device: lba {slba}+{nblocks} > {}",
            self.config.blocks()
        );
        assert!(nblocks > 0, "zero-length I/O");
    }

    /// Direct, untimed access for test setup / content verification.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Attach a fault injector (replace with `None`-like by a fresh healthy
    /// injector to clear).
    pub fn set_faults(&self, injector: FaultInjector) {
        *self.faults.lock() = Some(injector);
    }

    /// Kill the device permanently: every command fails, writes are
    /// dropped, and reads return zeros until [`revive`](Self::revive).
    /// Attaches a healthy injector first if none is present.
    pub fn kill(&self) {
        let mut f = self.faults.lock();
        f.get_or_insert_with(|| FaultInjector::new(0)).kill();
    }

    /// Bring a killed device back (a replacement target behind the same
    /// endpoint). The caller is responsible for resyncing its contents.
    pub fn revive(&self) {
        if let Some(f) = self.faults.lock().as_ref() {
            f.revive();
        }
    }

    pub fn is_dead(&self) -> bool {
        self.faults.lock().as_ref().is_some_and(|f| f.is_dead())
    }

    /// Lifetime statistics: (reads, writes, bytes_read, bytes_written).
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
            self.bytes_written.load(Ordering::Relaxed),
        )
    }

    fn reserve(&self, now: Time, nblocks: u32, media_latency: simkit::time::Dur) -> Time {
        let bytes = nblocks as u64 * BLOCK_SIZE;
        // Stage 1: controller command pipeline (fixed overhead, serialized).
        let t1 = self.pipeline.reserve(now, self.config.cmd_overhead);
        // Stage 2: one media channel pays the access latency.
        let t2 = self.media.reserve(t1, media_latency);
        // Stage 3: shared data path moves the payload.
        self.bus.reserve(t2, bytes)
    }
}

impl NvmeTarget for NvmeDevice {
    fn reserve_read(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        self.check_range(slba, nblocks);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(nblocks as u64 * BLOCK_SIZE, Ordering::Relaxed);
        self.reserve(now, nblocks, self.config.read_latency)
    }

    fn reserve_write(&self, now: Time, slba: u64, nblocks: u32) -> Time {
        self.check_range(slba, nblocks);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(nblocks as u64 * BLOCK_SIZE, Ordering::Relaxed);
        self.reserve(now, nblocks, self.config.write_latency)
    }

    fn dma_read(&self, slba: u64, dst: &mut [u8]) {
        // A dead device returns no data: zeros, never stale media bytes a
        // repair path might mistake for a good copy.
        if let Some(f) = self.faults.lock().as_ref() {
            if f.is_dead() {
                dst.fill(0);
                return;
            }
        }
        self.storage.read_at(slba * BLOCK_SIZE, dst);
        // Silent corruption lives "on the media": every read path (timed or
        // untimed) observes the same flipped bits until a rewrite heals it.
        if let Some(f) = self.faults.lock().as_ref() {
            f.corrupt_read(slba, dst);
        }
    }

    fn dma_write(&self, slba: u64, src: &[u8]) {
        if let Some(f) = self.faults.lock().as_ref() {
            if f.is_dead() {
                return; // writes to a dead device vanish
            }
        }
        self.storage.write_at(slba * BLOCK_SIZE, src);
        if let Some(f) = self.faults.lock().as_ref() {
            f.clear_marks(slba, src.len().div_ceil(BLOCK_SIZE as usize) as u32);
        }
    }

    fn max_queue_depth(&self) -> usize {
        self.config.max_queue_depth
    }

    fn blocks(&self) -> u64 {
        self.config.blocks()
    }

    fn describe(&self) -> String {
        format!(
            "local nvme '{}' ({} B)",
            self.config.name, self.config.capacity
        )
    }

    fn fault_decide(&self, _now: Time, is_write: bool) -> FaultOutcome {
        match self.faults.lock().as_ref() {
            Some(f) => f.decide(is_write),
            None => FaultOutcome::NONE,
        }
    }

    fn fault_decide_range(
        &self,
        _now: Time,
        is_write: bool,
        slba: u64,
        nblocks: u32,
    ) -> FaultOutcome {
        match self.faults.lock().as_ref() {
            Some(f) => f.decide_range(is_write, slba, nblocks),
            None => FaultOutcome::NONE,
        }
    }

    fn probe_extent(&self, slba: u64, nblocks: u32) -> bool {
        match self.faults.lock().as_ref() {
            Some(f) => f.persistent_fault(slba, nblocks),
            None => false,
        }
    }
}

/// Convert a byte range to the covering block range: (slba, nblocks,
/// offset-within-first-block).
pub fn covering_blocks(offset: u64, len: u64) -> (u64, u32, usize) {
    assert!(len > 0, "zero-length range");
    let slba = offset / BLOCK_SIZE;
    let head = offset % BLOCK_SIZE;
    let nblocks = (head + len).div_ceil(BLOCK_SIZE);
    (slba, nblocks as u32, head as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::prelude::*;

    fn dev() -> Arc<NvmeDevice> {
        NvmeDevice::new(DeviceConfig::optane(64 << 20))
    }

    #[test]
    fn covering_blocks_math() {
        assert_eq!(covering_blocks(0, 512), (0, 1, 0));
        assert_eq!(covering_blocks(0, 513), (0, 2, 0));
        assert_eq!(covering_blocks(511, 2), (0, 2, 511));
        assert_eq!(covering_blocks(1024, 512), (2, 1, 0));
        assert_eq!(covering_blocks(1030, 100), (2, 1, 6));
        assert_eq!(covering_blocks(1030, 1000), (2, 2, 6));
    }

    #[test]
    fn single_read_latency() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            let done = d.reserve_read(rt.now(), 0, 8); // 4 KB
                                                       // overhead + latency + 4096/2.2GB/s ≈ 0.7 + 10 + 1.86 us.
            let expect_ns = 700 + 10_000 + (4096.0 / 2.2e9 * 1e9) as u64;
            assert!(
                (done.nanos() as i64 - expect_ns as i64).abs() < 10,
                "done={done:?} expect~{expect_ns}"
            );
        });
    }

    #[test]
    fn iops_ceiling_enforced() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            // Saturate with 4K reads; effective IOPS should approach
            // channels/latency = 6/10us = 600K (bandwidth is not binding:
            // 600K * 4KB = 2.4GB/s > 2.2GB/s, so bus binds slightly lower).
            let n = 8000u64;
            let mut last = Time::ZERO;
            for i in 0..n {
                last = d.reserve_read(rt.now(), (i * 8) % 1000, 8);
            }
            let iops = n as f64 / last.as_secs_f64();
            assert!(
                (480_000.0..560_000.0).contains(&iops),
                "measured {iops} IOPS"
            );
        });
    }

    #[test]
    fn small_reads_are_iops_bound() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            let n = 8000u64;
            let mut last = Time::ZERO;
            for i in 0..n {
                last = d.reserve_read(rt.now(), i % 1000, 1); // 512 B
            }
            let iops = n as f64 / last.as_secs_f64();
            // 512B * 600K = 0.3 GB/s << bus, so the media term binds: ~600K.
            assert!(
                (540_000.0..640_000.0).contains(&iops),
                "measured {iops} IOPS"
            );
        });
    }

    #[test]
    fn large_reads_are_bandwidth_bound() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            let nblk = 2048u32; // 1 MB
            let n = 64u64;
            let mut last = Time::ZERO;
            for i in 0..n {
                last = d.reserve_read(rt.now(), i * nblk as u64, nblk);
            }
            let bw = (n * nblk as u64 * BLOCK_SIZE) as f64 / last.as_secs_f64();
            assert!((2.0e9..2.25e9).contains(&bw), "measured {bw} B/s");
        });
    }

    #[test]
    fn dma_roundtrip_and_stats() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            let payload: Vec<u8> = (0..1024).map(|i| (i % 256) as u8).collect();
            d.reserve_write(rt.now(), 4, 2);
            d.dma_write(4, &payload);
            d.reserve_read(rt.now(), 4, 2);
            let mut out = vec![0u8; 1024];
            d.dma_read(4, &mut out);
            assert_eq!(out, payload);
            let (r, w, br, bw) = d.stats();
            assert_eq!((r, w), (1, 1));
            assert_eq!((br, bw), (1024, 1024));
        });
    }

    #[test]
    fn killed_device_drops_writes_and_zeroes_reads() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            let payload = vec![0xabu8; 512];
            d.reserve_write(rt.now(), 0, 1);
            d.dma_write(0, &payload);
            d.kill();
            assert!(d.is_dead());
            assert!(
                !d.fault_decide_range(rt.now(), false, 0, 1).status.is_ok(),
                "commands fail while dead"
            );
            let mut out = vec![0xffu8; 512];
            d.dma_read(0, &mut out);
            assert_eq!(out, vec![0u8; 512], "dead reads return zeros");
            d.dma_write(8, &payload); // vanishes
            d.revive();
            assert!(!d.is_dead());
            let mut out = vec![0u8; 512];
            d.dma_read(0, &mut out);
            assert_eq!(out, payload, "media survives a kill/revive cycle");
            d.dma_read(8, &mut out);
            assert_eq!(out, vec![0u8; 512], "dead-window write never landed");
        });
    }

    #[test]
    #[should_panic(expected = "past end of device")]
    fn out_of_range_io_panics() {
        Runtime::simulate(0, |rt| {
            let d = dev();
            d.reserve_read(rt.now(), d.blocks(), 1);
        });
    }
}
