//! # blocksim — simulated NVMe devices with SPDK-like queue pairs
//!
//! The storage substrate for the DLFS reproduction. Provides:
//!
//! - [`device::NvmeDevice`] — a byte-accurate, sparse, in-memory block
//!   device with a calibrated three-term timing model (per-command
//!   overhead, media latency × internal channels, shared data-path
//!   bandwidth). Data written is really stored and read back.
//! - [`qpair::IoQPair`] — SPDK-semantics I/O queue pairs: non-blocking
//!   submission bounded by queue depth, completion discovery only by
//!   polling, not thread-safe (one qpair per submitter).
//! - [`dma::DmaPool`] / [`dma::DmaBuf`] — huge-page buffer pool emulating
//!   SPDK's pinned-memory requirement.
//! - [`device::NvmeTarget`] — the trait remote NVMe-oF targets (crate
//!   `fabric`) implement so the same qpair code drives local and remote
//!   devices.
//!
//! Timing is *reservation-based*: submitting a command computes, against
//! the device's internal FIFO resources, the exact virtual instant it will
//! complete. Devices are passive objects — no scheduler participant each —
//! which keeps 16-node simulations cheap and deterministic.

//! ## Example
//!
//! ```
//! use blocksim::{DeviceConfig, DmaBuf, IoQPair, NvmeDevice};
//! use simkit::prelude::*;
//!
//! let ((), _) = Runtime::simulate(7, |rt| {
//!     let dev = NvmeDevice::new(DeviceConfig::optane(64 << 20));
//!     dev.storage().write_at(0, b"hello nvme");
//!     let mut qp = IoQPair::new(dev, 32);
//!     let buf = DmaBuf::standalone(512);
//!     qp.submit_read(rt, 1, 0, 1, buf.clone(), 0).unwrap();
//!     let comps = qp.drain(rt, Dur::nanos(100)); // busy-poll to completion
//!     assert_eq!(comps.len(), 1);
//!     buf.with(|d| assert_eq!(&d[..10], b"hello nvme"));
//! });
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod device;
pub mod dma;
pub mod fault;
pub mod qpair;
pub mod storage;

pub use config::{DeviceConfig, BLOCK_SIZE};
pub use device::{covering_blocks, NvmeDevice, NvmeTarget, OffloadExtent};
pub use dma::{copy_ops, DmaBuf, DmaPool, HUGE_PAGE};
pub use fault::{CmdStatus, FaultInjector, FaultOutcome};
pub use qpair::{Completion, CompletionHook, IoQPair, Op, QpairError};
pub use storage::Storage;
