//! Byte-accurate backing store for simulated devices.
//!
//! Data written to a simulated NVMe device is really stored and really read
//! back, so end-to-end tests can verify payload integrity (checksums) after
//! travelling through qpairs, fabrics, caches and copy threads.

use simkit::plock::RwLock;

use crate::config::BLOCK_SIZE;

/// Sparse block store: capacity can be large (e.g. 480 GB) while memory is
/// only consumed for regions actually written. Backed by fixed-size extents.
#[derive(Debug)]
pub struct Storage {
    capacity: u64,
    extent_size: u64,
    extents: RwLock<Vec<Option<Box<[u8]>>>>,
}

/// Size of one lazily-allocated extent (1 MiB).
const EXTENT_SIZE: u64 = 1 << 20;

impl Storage {
    pub fn new(capacity: u64) -> Storage {
        assert!(
            capacity.is_multiple_of(BLOCK_SIZE),
            "capacity must be block aligned"
        );
        let n = capacity.div_ceil(EXTENT_SIZE) as usize;
        Storage {
            capacity,
            extent_size: EXTENT_SIZE,
            extents: RwLock::new((0..n).map(|_| None).collect()),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of backing memory actually allocated.
    pub fn resident_bytes(&self) -> u64 {
        let g = self.extents.read();
        g.iter().filter(|e| e.is_some()).count() as u64 * self.extent_size
    }

    /// Read `dst.len()` bytes starting at byte `offset`. Unwritten regions
    /// read as zero. Panics on out-of-range access (a simulation bug).
    pub fn read_at(&self, offset: u64, dst: &mut [u8]) {
        let end = offset
            .checked_add(dst.len() as u64)
            .expect("offset overflow");
        assert!(end <= self.capacity, "read past device capacity");
        let g = self.extents.read();
        let mut done = 0usize;
        while done < dst.len() {
            let pos = offset + done as u64;
            let ext = (pos / self.extent_size) as usize;
            let within = (pos % self.extent_size) as usize;
            let n = ((self.extent_size as usize - within).min(dst.len() - done)).max(1);
            match &g[ext] {
                Some(data) => dst[done..done + n].copy_from_slice(&data[within..within + n]),
                None => dst[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Write `src` starting at byte `offset`.
    pub fn write_at(&self, offset: u64, src: &[u8]) {
        let end = offset
            .checked_add(src.len() as u64)
            .expect("offset overflow");
        assert!(end <= self.capacity, "write past device capacity");
        let mut g = self.extents.write();
        let mut done = 0usize;
        while done < src.len() {
            let pos = offset + done as u64;
            let ext = (pos / self.extent_size) as usize;
            let within = (pos % self.extent_size) as usize;
            let n = ((self.extent_size as usize - within).min(src.len() - done)).max(1);
            let data = g[ext]
                .get_or_insert_with(|| vec![0u8; self.extent_size as usize].into_boxed_slice());
            data[within..within + n].copy_from_slice(&src[done..done + n]);
            done += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_one_extent() {
        let s = Storage::new(4 << 20);
        let payload = [7u8; 1000];
        s.write_at(512, &payload);
        let mut out = [0u8; 1000];
        s.read_at(512, &mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn roundtrip_across_extents() {
        let s = Storage::new(4 << 20);
        let payload: Vec<u8> = (0..3 * EXTENT_SIZE as usize / 2)
            .map(|i| (i % 251) as u8)
            .collect();
        let off = EXTENT_SIZE / 2 + 512;
        s.write_at(off, &payload);
        let mut out = vec![0u8; payload.len()];
        s.read_at(off, &mut out);
        assert_eq!(out, payload);
    }

    #[test]
    fn unwritten_reads_zero() {
        let s = Storage::new(2 << 20);
        let mut out = [0xFFu8; 64];
        s.read_at(12345, &mut out);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn sparse_allocation() {
        let s = Storage::new(64 << 20);
        s.write_at(0, &[1u8; 10]);
        s.write_at(32 << 20, &[2u8; 10]);
        assert_eq!(s.resident_bytes(), 2 * EXTENT_SIZE);
    }

    #[test]
    #[should_panic(expected = "past device capacity")]
    fn out_of_range_read_panics() {
        let s = Storage::new(1 << 20);
        let mut out = [0u8; 16];
        s.read_at((1 << 20) - 8, &mut out);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let s = Storage::new(1 << 20);
        s.write_at(100, &[1u8; 50]);
        s.write_at(120, &[2u8; 50]);
        let mut out = [0u8; 70];
        s.read_at(100, &mut out);
        assert!(out[..20].iter().all(|&b| b == 1));
        assert!(out[20..].iter().all(|&b| b == 2));
    }
}
