//! DMA-able buffer pool emulating SPDK's huge-page memory requirement.
//!
//! SPDK mandates that all I/O buffers live in pinned huge-page memory
//! registered with the NVMe driver (paper §III-C1). We model this with a
//! [`DmaPool`]: a contiguous arena carved from simulated 2 MiB huge pages
//! into fixed-size chunks with a free list. Buffers not allocated from a
//! pool (plain application memory) cannot be handed to a qpair — mirroring
//! the real constraint that forces DLFS to copy from its sample cache to
//! application buffers with copy threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simkit::plock::Mutex;

/// Simulated huge-page size (2 MiB).
pub const HUGE_PAGE: u64 = 2 << 20;

/// Process-wide count of CPU memcpys through DMA buffers
/// ([`DmaBuf::copy_to`] / [`DmaBuf::copy_from`]). Device-side DMA
/// (`with`/`with_mut`) is *not* counted — that transfer is done by the
/// device engine, not the host CPU. Zero-copy tests snapshot this before
/// and after a read to prove the steady-state path never touches memcpy.
static COPY_OPS: AtomicU64 = AtomicU64::new(0);

/// Total `copy_to`/`copy_from` operations since process start.
pub fn copy_ops() -> u64 {
    COPY_OPS.load(Ordering::Relaxed)
}

/// A DMA-registered buffer: a fixed-size chunk from a [`DmaPool`].
///
/// Cheap to clone (shared interior). Interior mutability is required because
/// the "device DMA engine" fills the buffer at completion time while the
/// logical owner holds it.
#[derive(Clone, Debug)]
pub struct DmaBuf {
    data: Arc<Mutex<Box<[u8]>>>,
    pool: Option<Arc<PoolInner>>,
    index: usize,
}

impl DmaBuf {
    /// An unpooled DMA buffer (for tests and one-off transfers).
    pub fn standalone(len: usize) -> DmaBuf {
        DmaBuf {
            data: Arc::new(Mutex::new(vec![0u8; len].into_boxed_slice())),
            pool: None,
            index: usize::MAX,
        }
    }

    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy bytes out of the buffer (a host-CPU memcpy; counted in
    /// [`copy_ops`]).
    pub fn copy_to(&self, offset: usize, dst: &mut [u8]) {
        COPY_OPS.fetch_add(1, Ordering::Relaxed);
        let g = self.data.lock();
        dst.copy_from_slice(&g[offset..offset + dst.len()]);
    }

    /// Copy bytes into the buffer (a host-CPU memcpy; counted in
    /// [`copy_ops`]).
    pub fn copy_from(&self, offset: usize, src: &[u8]) {
        COPY_OPS.fetch_add(1, Ordering::Relaxed);
        let mut g = self.data.lock();
        g[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Run `f` with a read view of the buffer contents.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.lock())
    }

    /// Run `f` with a write view of the buffer contents.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.data.lock())
    }

    /// Pool chunk index (used by caches keyed on chunks).
    pub fn index(&self) -> usize {
        self.index
    }
}

#[derive(Debug)]
struct PoolInner {
    chunk_size: usize,
    free: Mutex<Vec<usize>>,
    total: usize,
    hugepages: u64,
}

/// One chunk's backing buffer.
type ChunkBuf = Arc<Mutex<Box<[u8]>>>;

/// Fixed-chunk allocator over simulated huge pages.
#[derive(Clone, Debug)]
pub struct DmaPool {
    inner: Arc<PoolInner>,
    chunks: Arc<Vec<ChunkBuf>>,
}

impl DmaPool {
    /// Create a pool of `chunks` buffers of `chunk_size` bytes each.
    pub fn new(chunk_size: usize, chunks: usize) -> DmaPool {
        assert!(chunk_size > 0 && chunks > 0);
        let bytes = chunk_size as u64 * chunks as u64;
        let hugepages = bytes.div_ceil(HUGE_PAGE);
        let inner = Arc::new(PoolInner {
            chunk_size,
            free: Mutex::new((0..chunks).rev().collect()),
            total: chunks,
            hugepages,
        });
        let buffers = (0..chunks)
            .map(|_| Arc::new(Mutex::new(vec![0u8; chunk_size].into_boxed_slice())))
            .collect();
        DmaPool {
            inner,
            chunks: Arc::new(buffers),
        }
    }

    /// Allocate a chunk; `None` when the pool is exhausted.
    pub fn alloc(&self) -> Option<DmaBuf> {
        let idx = self.inner.free.lock().pop()?;
        Some(DmaBuf {
            data: self.chunks[idx].clone(),
            pool: Some(self.inner.clone()),
            index: idx,
        })
    }

    /// Return a chunk to the pool. (Explicit rather than on-Drop so that the
    /// many clones held by in-flight commands don't have to coordinate.)
    pub fn free(&self, buf: DmaBuf) {
        let pool = buf
            .pool
            .as_ref()
            .expect("cannot free a standalone DmaBuf into a pool");
        assert!(
            Arc::ptr_eq(pool, &self.inner),
            "DmaBuf returned to the wrong pool"
        );
        let mut free = self.inner.free.lock();
        debug_assert!(!free.contains(&buf.index), "double free of DMA chunk");
        free.push(buf.index);
    }

    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size
    }

    pub fn total_chunks(&self) -> usize {
        self.inner.total
    }

    pub fn available(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Simulated huge pages pinned for this pool.
    pub fn hugepages(&self) -> u64 {
        self.inner.hugepages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let pool = DmaPool::new(4096, 4);
        assert_eq!(pool.available(), 4);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_eq!(pool.available(), 2);
        assert_ne!(a.index(), b.index());
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let pool = DmaPool::new(64, 2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert!(pool.alloc().is_none());
        pool.free(a);
        assert!(pool.alloc().is_some());
    }

    #[test]
    fn buffer_contents_roundtrip() {
        let pool = DmaPool::new(128, 1);
        let buf = pool.alloc().unwrap();
        buf.copy_from(10, b"hello");
        let mut out = [0u8; 5];
        buf.copy_to(10, &mut out);
        assert_eq!(&out, b"hello");
        buf.with(|d| assert_eq!(&d[10..15], b"hello"));
        buf.with_mut(|d| d[10] = b'H');
        buf.with(|d| assert_eq!(&d[10..15], b"Hello"));
    }

    #[test]
    fn hugepage_accounting() {
        // 16 chunks of 256 KB = 4 MiB = 2 huge pages.
        let pool = DmaPool::new(256 << 10, 16);
        assert_eq!(pool.hugepages(), 2);
        assert_eq!(pool.chunk_size(), 256 << 10);
        assert_eq!(pool.total_chunks(), 16);
    }

    #[test]
    #[should_panic(expected = "standalone")]
    fn freeing_standalone_panics() {
        let pool = DmaPool::new(64, 1);
        pool.free(DmaBuf::standalone(64));
    }
}
