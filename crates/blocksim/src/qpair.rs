//! SPDK-style I/O queue pairs.
//!
//! An [`IoQPair`] pairs a submission queue and a completion queue against one
//! target (paper §III-C2). Semantics mirror SPDK's:
//!
//! * `submit_*` is non-blocking and fails with [`QpairError::QueueFull`]
//!   once the configured queue depth is outstanding;
//! * completions are discovered only by **polling**
//!   [`IoQPair::process_completions`] — there are no interrupts;
//! * a qpair is **not** thread-safe (`&mut self` everywhere); concurrent
//!   submitters need their own qpairs, exactly as in SPDK.

use std::cmp::Ordering as CmpOrd;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

use simkit::runtime::Runtime;
use simkit::telemetry::{Counter, Gauge, Histo, Registry};
use simkit::time::{Dur, Time};

use crate::config::BLOCK_SIZE;
use crate::device::NvmeTarget;
use crate::dma::DmaBuf;
use crate::fault::CmdStatus;

/// Block I/O opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Read,
    Write,
}

/// Errors surfaced by qpair operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpairError {
    /// The submission queue already holds `queue_depth` outstanding commands.
    QueueFull,
    /// The DMA buffer is too small for the requested transfer.
    BufferTooSmall,
}

impl std::fmt::Display for QpairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpairError::QueueFull => write!(f, "submission queue full"),
            QpairError::BufferTooSmall => write!(f, "DMA buffer too small for transfer"),
        }
    }
}

impl std::error::Error for QpairError {}

/// A completed command, as returned by `process_completions`.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Caller-chosen command id.
    pub id: u64,
    pub op: Op,
    pub bytes: u64,
    /// When the command was submitted.
    pub submitted: Time,
    /// When the device finished it.
    pub done: Time,
    /// Command outcome; initiators must resubmit on `MediaError`.
    pub status: CmdStatus,
}

struct Pending {
    done: Time,
    seq: u64,
    id: u64,
    op: Op,
    slba: u64,
    nblocks: u32,
    buf: DmaBuf,
    buf_offset: usize,
    submitted: Time,
    status: CmdStatus,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.done, self.seq) == (other.done, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrd> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> CmpOrd {
        // Min-heap by (done, seq) via reversed comparison.
        (other.done, other.seq).cmp(&(self.done, self.seq))
    }
}

/// Completion-event hook: at submission time the qpair announces when the
/// command it just accepted will complete on the device. An event-driven
/// reactor keeps a clock of these instants so it polls only queues that
/// can actually have work, instead of spinning on idle queues. Purely
/// advisory — completions are still *discovered* only by polling
/// [`IoQPair::process_completions`], so attaching a hook never changes
/// polling semantics, ordering or timing.
pub trait CompletionHook: Send + Sync {
    /// A command was accepted on the qpair registered under `tag`; the
    /// device will have it finished at `done` (fault latency included).
    fn on_submit(&self, tag: usize, done: Time);
}

/// Telemetry handles of one qpair (see [`IoQPair::attach_telemetry`]).
#[derive(Clone, Debug)]
struct QpTelemetry {
    /// Instantaneous submission-queue occupancy.
    queue_depth: Gauge,
    /// Commands submitted.
    commands: Counter,
    /// Bytes moved by completed commands.
    bytes: Counter,
    /// Completions that carried a media error (initiator must retry).
    media_errors: Counter,
    /// Completions that carried a transport error (command never reached
    /// the target; surfaced after the I/O timeout).
    timeouts: Counter,
    /// Device service latency (submit → device done) per command, ns.
    cmd_latency_ns: Histo,
}

/// An SPDK-like I/O queue pair bound to one [`NvmeTarget`].
pub struct IoQPair {
    target: Arc<dyn NvmeTarget>,
    depth: usize,
    pending: BinaryHeap<Pending>,
    seq: u64,
    submitted: u64,
    completed: u64,
    telemetry: Option<QpTelemetry>,
    hook: Option<(Arc<dyn CompletionHook>, usize)>,
    cancelled: HashSet<u64>,
}

impl std::fmt::Debug for IoQPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoQPair")
            .field("target", &self.target.describe())
            .field("depth", &self.depth)
            .field("outstanding", &self.pending.len())
            .finish()
    }
}

impl IoQPair {
    /// Create a qpair with the given queue depth (clamped to the target's
    /// maximum).
    pub fn new(target: Arc<dyn NvmeTarget>, depth: usize) -> IoQPair {
        let depth = depth.clamp(1, target.max_queue_depth());
        IoQPair {
            target,
            depth,
            pending: BinaryHeap::new(),
            seq: 0,
            submitted: 0,
            completed: 0,
            telemetry: None,
            hook: None,
            cancelled: HashSet::new(),
        }
    }

    /// Register a [`CompletionHook`] under `tag` (typically the qpair's
    /// index in the initiator's qpair array). Every accepted submission
    /// reports its device completion instant to the hook.
    pub fn attach_completion_hook(&mut self, hook: Arc<dyn CompletionHook>, tag: usize) {
        self.hook = Some((hook, tag));
    }

    /// Register this qpair's metrics in `reg` (typically a registry scoped
    /// to the device, e.g. `blocksim.dev0`): `queue_depth`, `commands`,
    /// `bytes`, `media_errors` (retryable failures), `timeouts` (transport
    /// errors) and the per-command device service latency histogram
    /// `cmd_latency_ns`.
    pub fn attach_telemetry(&mut self, reg: &Registry) {
        self.telemetry = Some(QpTelemetry {
            queue_depth: reg.gauge("queue_depth"),
            commands: reg.counter("commands"),
            bytes: reg.counter("bytes"),
            media_errors: reg.counter("media_errors"),
            timeouts: reg.counter("timeouts"),
            cmd_latency_ns: reg.histogram("cmd_latency_ns"),
        });
    }

    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Total commands submitted / completed over the qpair's lifetime.
    pub fn counters(&self) -> (u64, u64) {
        (self.submitted, self.completed)
    }

    /// Submit a read of `nblocks` logical blocks from `slba` into `buf` at
    /// `buf_offset`. Non-blocking.
    pub fn submit_read(
        &mut self,
        rt: &Runtime,
        id: u64,
        slba: u64,
        nblocks: u32,
        buf: DmaBuf,
        buf_offset: usize,
    ) -> Result<(), QpairError> {
        self.submit(rt, id, Op::Read, slba, nblocks, buf, buf_offset)
    }

    /// Submit a write of `nblocks` logical blocks to `slba` taken from `buf`
    /// at `buf_offset`. The payload is captured at submission time.
    pub fn submit_write(
        &mut self,
        rt: &Runtime,
        id: u64,
        slba: u64,
        nblocks: u32,
        buf: DmaBuf,
        buf_offset: usize,
    ) -> Result<(), QpairError> {
        self.submit(rt, id, Op::Write, slba, nblocks, buf, buf_offset)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &mut self,
        rt: &Runtime,
        id: u64,
        op: Op,
        slba: u64,
        nblocks: u32,
        buf: DmaBuf,
        buf_offset: usize,
    ) -> Result<(), QpairError> {
        if self.pending.len() >= self.depth {
            return Err(QpairError::QueueFull);
        }
        let bytes = nblocks as usize * BLOCK_SIZE as usize;
        if buf_offset + bytes > buf.len() {
            return Err(QpairError::BufferTooSmall);
        }
        let now = rt.now();
        // Fault injection: the command's fate (and any latency spike) is
        // decided up front so the simulation stays deterministic.
        let fault = self
            .target
            .fault_decide_range(now, op == Op::Write, slba, nblocks);
        let done = match op {
            Op::Read => self.target.reserve_read(now, slba, nblocks),
            Op::Write => {
                if fault.status.is_ok() {
                    // Data leaves the source buffer at submission time.
                    buf.with(|d| {
                        self.target
                            .dma_write(slba, &d[buf_offset..buf_offset + bytes])
                    });
                }
                self.target.reserve_write(now, slba, nblocks)
            }
        } + fault.extra_latency;
        self.seq += 1;
        self.submitted += 1;
        self.pending.push(Pending {
            done,
            seq: self.seq,
            id,
            op,
            slba,
            nblocks,
            buf,
            buf_offset,
            submitted: now,
            status: fault.status,
        });
        if let Some(t) = &self.telemetry {
            t.commands.inc();
            t.queue_depth.set(self.pending.len() as i64);
        }
        if let Some((hook, tag)) = &self.hook {
            hook.on_submit(*tag, done);
        }
        Ok(())
    }

    /// Cancel an outstanding command by id (hedged-read loser): it is
    /// discarded at harvest time without a DMA and without emitting a
    /// completion. Returns whether an outstanding command matched. The
    /// device still spends its reserved service time — cancellation only
    /// stops the payload from landing in the buffer.
    pub fn cancel(&mut self, id: u64) -> bool {
        if self.pending.iter().any(|p| p.id == id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Poll the completion queue: harvest up to `max` commands whose device
    /// completion time has passed. Read payloads are DMA'd into their
    /// buffers here (the data was in flight until now). Returns completions
    /// in device-completion order.
    pub fn process_completions(&mut self, rt: &Runtime, max: usize) -> Vec<Completion> {
        let now = rt.now();
        let mut out = Vec::new();
        while out.len() < max {
            match self.pending.peek() {
                Some(p) if p.done <= now => {}
                _ => break,
            }
            let p = self.pending.pop().expect("peeked entry");
            if self.cancelled.remove(&p.id) {
                self.completed += 1;
                if let Some(t) = &self.telemetry {
                    t.queue_depth.set(self.pending.len() as i64);
                }
                continue;
            }
            let bytes = p.nblocks as u64 * BLOCK_SIZE;
            if p.op == Op::Read && p.status.is_ok() {
                p.buf.with_mut(|d| {
                    self.target
                        .dma_read(p.slba, &mut d[p.buf_offset..p.buf_offset + bytes as usize]);
                });
            }
            self.completed += 1;
            if let Some(t) = &self.telemetry {
                t.bytes.add(bytes);
                t.cmd_latency_ns.record_dur(p.done - p.submitted);
                match p.status {
                    CmdStatus::Ok => {}
                    CmdStatus::MediaError => t.media_errors.inc(),
                    CmdStatus::TransportError => t.timeouts.inc(),
                }
                t.queue_depth.set(self.pending.len() as i64);
            }
            out.push(Completion {
                id: p.id,
                op: p.op,
                bytes,
                submitted: p.submitted,
                done: p.done,
                status: p.status,
            });
        }
        out
    }

    /// The completion instant of the next pending command, if any. Used by
    /// poll loops to idle efficiently without changing polling semantics.
    pub fn next_completion_at(&self) -> Option<Time> {
        self.pending.peek().map(|p| p.done)
    }

    /// Busy-poll until all outstanding commands complete, charging
    /// `poll_cost` of CPU per poll iteration. Returns all completions.
    pub fn drain(&mut self, rt: &Runtime, poll_cost: Dur) -> Vec<Completion> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let got = self.process_completions(rt, usize::MAX);
            if got.is_empty() {
                // Model one spin of the polling loop, then (in virtual time)
                // jump to the next completion if it is further away — the
                // loop would have spun until then anyway.
                rt.work(poll_cost.max(Dur::nanos(1)));
                if let Some(t) = self.next_completion_at() {
                    let now = rt.now();
                    if t > now {
                        rt.work(t - now);
                    }
                }
            } else {
                out.extend(got);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::NvmeDevice;

    fn setup(rt: &Runtime) -> (Arc<NvmeDevice>, IoQPair) {
        let _ = rt;
        let dev = NvmeDevice::new(DeviceConfig::optane(64 << 20));
        let qp = IoQPair::new(dev.clone(), 32);
        (dev, qp)
    }

    #[test]
    fn submit_poll_roundtrip() {
        Runtime::simulate(0, |rt| {
            let (dev, mut qp) = setup(rt);
            let payload = vec![0xabu8; 4096];
            dev.storage().write_at(0, &payload);

            let buf = DmaBuf::standalone(4096);
            qp.submit_read(rt, 1, 0, 8, buf.clone(), 0).unwrap();
            assert_eq!(qp.outstanding(), 1);
            // Nothing completes before the device is done.
            assert!(qp.process_completions(rt, 16).is_empty());
            let done = qp.next_completion_at().unwrap();
            rt.sleep(done - rt.now());
            let comps = qp.process_completions(rt, 16);
            assert_eq!(comps.len(), 1);
            assert_eq!(comps[0].id, 1);
            assert_eq!(comps[0].bytes, 4096);
            buf.with(|d| assert!(d.iter().all(|&b| b == 0xab)));
            assert_eq!(qp.outstanding(), 0);
        });
    }

    #[test]
    fn queue_depth_enforced() {
        Runtime::simulate(0, |rt| {
            let (_dev, mut qp) = setup(rt);
            let mut bufs = Vec::new();
            for i in 0..32 {
                let b = DmaBuf::standalone(512);
                qp.submit_read(rt, i, i, 1, b.clone(), 0).unwrap();
                bufs.push(b);
            }
            let b = DmaBuf::standalone(512);
            assert_eq!(
                qp.submit_read(rt, 99, 0, 1, b, 0),
                Err(QpairError::QueueFull)
            );
            let comps = qp.drain(rt, Dur::nanos(50));
            assert_eq!(comps.len(), 32);
            let (s, c) = qp.counters();
            assert_eq!((s, c), (32, 32));
        });
    }

    #[test]
    fn write_then_read_roundtrip() {
        Runtime::simulate(0, |rt| {
            let (dev, mut qp) = setup(rt);
            let wbuf = DmaBuf::standalone(1024);
            wbuf.with_mut(|d| {
                d.iter_mut()
                    .enumerate()
                    .for_each(|(i, b)| *b = (i % 251) as u8)
            });
            qp.submit_write(rt, 1, 10, 2, wbuf.clone(), 0).unwrap();
            qp.drain(rt, Dur::nanos(50));

            let rbuf = DmaBuf::standalone(1024);
            qp.submit_read(rt, 2, 10, 2, rbuf.clone(), 0).unwrap();
            qp.drain(rt, Dur::nanos(50));
            let expect: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
            rbuf.with(|d| assert_eq!(d, &expect[..]));
            let (r, w, _, _) = dev.stats();
            assert_eq!((r, w), (1, 1));
        });
    }

    #[test]
    fn pipelining_beats_serial() {
        // Queue-depth-32 submission should finish much faster than
        // synchronous one-at-a-time reads — the mechanism behind the paper's
        // DLFS-Base vs DLFS gap.
        let serial = Runtime::simulate(0, |rt| {
            let (_d, mut qp) = setup(rt);
            for i in 0..64u64 {
                let b = DmaBuf::standalone(4096);
                qp.submit_read(rt, i, (i * 8) % 1024, 8, b, 0).unwrap();
                qp.drain(rt, Dur::nanos(50));
            }
            rt.now().nanos()
        })
        .0;
        let pipelined = Runtime::simulate(0, |rt| {
            let (_d, mut qp) = setup(rt);
            let mut i = 0u64;
            let mut done = 0;
            while done < 64 {
                while i < 64 {
                    let b = DmaBuf::standalone(4096);
                    if qp.submit_read(rt, i, (i * 8) % 1024, 8, b, 0).is_err() {
                        break;
                    }
                    i += 1;
                }
                let got = qp.process_completions(rt, usize::MAX);
                if got.is_empty() {
                    rt.work(Dur::nanos(100));
                    if let Some(t) = qp.next_completion_at() {
                        let now = rt.now();
                        if t > now {
                            rt.work(t - now);
                        }
                    }
                }
                done += got.len();
            }
            rt.now().nanos()
        })
        .0;
        assert!(
            pipelined * 3 < serial,
            "pipelined {pipelined} vs serial {serial}"
        );
    }

    #[test]
    fn buffer_too_small_rejected() {
        Runtime::simulate(0, |rt| {
            let (_d, mut qp) = setup(rt);
            let b = DmaBuf::standalone(512);
            assert_eq!(
                qp.submit_read(rt, 0, 0, 2, b, 0),
                Err(QpairError::BufferTooSmall)
            );
        });
    }
}
