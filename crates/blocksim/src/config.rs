//! Device configuration and presets.

use simkit::time::Dur;

/// Logical block size used by every simulated NVMe namespace (bytes).
pub const BLOCK_SIZE: u64 = 512;

/// Static description of a simulated NVMe device.
///
/// The timing model has three terms, mirroring how real NVMe SSDs behave:
///
/// * `cmd_overhead` — fixed controller cost per command (doorbell, fetch,
///   completion posting). Paid on the device's command pipeline.
/// * `read_latency`/`write_latency` — media access time per command, served
///   by one of `channels` parallel internal units. The device's IOPS
///   ceiling is therefore `channels / latency`.
/// * `bytes_per_sec` — shared internal data-path bandwidth across all
///   channels (the "bus" term); large transfers are bandwidth-bound.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    pub name: String,
    /// Usable capacity in bytes (multiple of [`BLOCK_SIZE`]).
    pub capacity: u64,
    /// Fixed per-command controller overhead.
    pub cmd_overhead: Dur,
    /// Media latency per read command.
    pub read_latency: Dur,
    /// Media latency per write command.
    pub write_latency: Dur,
    /// Shared data-path bandwidth in bytes/second.
    pub bytes_per_sec: f64,
    /// Internal parallel units (dies/channels).
    pub channels: usize,
    /// Maximum queue depth an I/O qpair may use.
    pub max_queue_depth: usize,
}

impl DeviceConfig {
    /// Roughly an Intel Optane P4800X-class device, as used in the paper's
    /// single-node experiments (480 GB, ~2.2 GB/s reads, ~10 us latency,
    /// ~550 K 4K-read IOPS).
    pub fn optane(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            name: "optane".into(),
            capacity,
            cmd_overhead: Dur::nanos(700),
            read_latency: Dur::micros(10),
            write_latency: Dur::micros(12),
            bytes_per_sec: 2.2e9,
            channels: 6,
            max_queue_depth: 128,
        }
    }

    /// The paper's multi-node methodology: a RAM-backed emulated NVMe device
    /// with an injected access delay ("we leverage RAMdisk to emulate NVMe
    /// SSD devices by adding a delay when accessing the data").
    pub fn emulated_ramdisk(capacity: u64, delay: Dur) -> DeviceConfig {
        DeviceConfig {
            name: "emulated-nvme".into(),
            capacity,
            cmd_overhead: Dur::nanos(500),
            read_latency: delay,
            write_latency: delay,
            bytes_per_sec: 2.2e9,
            channels: 6,
            max_queue_depth: 128,
        }
    }

    /// IOPS ceiling implied by the latency/channel terms.
    pub fn max_iops(&self) -> f64 {
        if self.read_latency.is_zero() {
            f64::INFINITY
        } else {
            self.channels as f64 / self.read_latency.as_secs_f64()
        }
    }

    /// Number of addressable blocks.
    pub fn blocks(&self) -> u64 {
        self.capacity / BLOCK_SIZE
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 || !self.capacity.is_multiple_of(BLOCK_SIZE) {
            return Err(format!(
                "capacity {} must be a nonzero multiple of {BLOCK_SIZE}",
                self.capacity
            ));
        }
        if self.channels == 0 {
            return Err("channels must be > 0".into());
        }
        if self.max_queue_depth == 0 {
            return Err("max_queue_depth must be > 0".into());
        }
        if self.bytes_per_sec <= 0.0 {
            return Err("bytes_per_sec must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_preset_sane() {
        let c = DeviceConfig::optane(480_000_000_000);
        c.validate().unwrap();
        // ~600K IOPS ballpark.
        let iops = c.max_iops();
        assert!((400_000.0..900_000.0).contains(&iops), "{iops}");
        assert_eq!(c.blocks(), 480_000_000_000 / 512);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = DeviceConfig::optane(1 << 20);
        c.capacity = 777;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::optane(1 << 20);
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::optane(1 << 20);
        c.bytes_per_sec = 0.0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::optane(1 << 20);
        c.max_queue_depth = 0;
        assert!(c.validate().is_err());
    }
}
