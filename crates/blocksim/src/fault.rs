//! Deterministic fault injection for simulated devices.
//!
//! Real NVMe devices return command-level media errors and experience
//! latency spikes; the storage systems above them must retry. The injector
//! draws per-command outcomes from a seeded stream, so failing runs replay
//! exactly — a crashing retry path reproduces on every execution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use simkit::plock::Mutex;
use simkit::time::Dur;

use crate::config::BLOCK_SIZE;

/// Outcome of one block command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CmdStatus {
    #[default]
    Ok,
    /// Unrecoverable media error for this attempt; the command must be
    /// resubmitted by the initiator.
    MediaError,
    /// The command never reached the target (dropped capsule, crashed or
    /// unreachable node). The initiator observes it only after its I/O
    /// timeout elapses, carried in [`FaultOutcome::extra_latency`].
    TransportError,
}

impl CmdStatus {
    pub fn is_ok(self) -> bool {
        self == CmdStatus::Ok
    }
}

/// Per-command fault decision: (status, extra service latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    pub status: CmdStatus,
    pub extra_latency: Dur,
}

impl FaultOutcome {
    pub const NONE: FaultOutcome = FaultOutcome {
        status: CmdStatus::Ok,
        extra_latency: Dur::ZERO,
    };
}

/// A block extent `[slba, slba + nblocks)` carrying a persistent fault.
type Extent = (u64, u64);

fn overlaps(extents: &[Extent], slba: u64, nblocks: u32) -> bool {
    let end = slba + nblocks as u64;
    extents.iter().any(|&(s, n)| slba < s + n && s < end)
}

/// Remove `[slba, slba + nblocks)` from every extent, splitting survivors.
fn clear_overlap(extents: &mut Vec<Extent>, slba: u64, nblocks: u32) {
    let end = slba + nblocks as u64;
    let mut out = Vec::with_capacity(extents.len());
    for &(s, n) in extents.iter() {
        let e = s + n;
        if e <= slba || end <= s {
            out.push((s, n));
            continue;
        }
        if s < slba {
            out.push((s, slba - s));
        }
        if end < e {
            out.push((end, e - end));
        }
    }
    *extents = out;
}

/// Seeded fault model attached to a device.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    counter: AtomicU64,
    /// Probability of a read media error, in parts per million.
    pub read_fail_ppm: u32,
    /// Probability of a write media error, in parts per million.
    pub write_fail_ppm: u32,
    /// Probability of a latency spike, in parts per million.
    pub slow_ppm: u32,
    /// Added service latency on a spike.
    pub slow_extra: Dur,
    /// Sticky bad extents: every timed read overlapping one fails with a
    /// `MediaError` until the blocks are rewritten.
    sticky: Mutex<Vec<Extent>>,
    /// Silent-corruption extents: reads return `Ok` but each overlapping
    /// block comes back with one deterministically chosen bit flipped,
    /// until the blocks are rewritten.
    flips: Mutex<Vec<Extent>>,
    /// Permanent death: every command (read *and* write) fails with a
    /// `MediaError` until [`revive`](Self::revive). Unlike a fabric crash
    /// window this never heals on its own — it models a device that is
    /// gone for good, not a node that reboots.
    dead: AtomicBool,
}

impl FaultInjector {
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            counter: AtomicU64::new(0),
            read_fail_ppm: 0,
            write_fail_ppm: 0,
            slow_ppm: 0,
            slow_extra: Dur::ZERO,
            sticky: Mutex::new(Vec::new()),
            flips: Mutex::new(Vec::new()),
            dead: AtomicBool::new(false),
        }
    }

    /// Kill the device permanently: every subsequent command fails with a
    /// `MediaError` until [`revive`](Self::revive). Imperative rather than
    /// scheduled — tests and chaos harnesses pull the plug at a virtual
    /// instant of their choosing, and the decision paths stay time-free.
    pub fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    /// Bring a killed device back, modeling a replacement target behind
    /// the same endpoint. The media contents are whatever the device holds
    /// (callers model a fresh disk by resyncing every extent the node
    /// should own — see the core rebuild planner).
    pub fn revive(&self) {
        self.dead.store(false, Ordering::Relaxed);
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    pub fn with_read_failures(mut self, ppm: u32) -> Self {
        self.read_fail_ppm = ppm;
        self
    }

    pub fn with_write_failures(mut self, ppm: u32) -> Self {
        self.write_fail_ppm = ppm;
        self
    }

    pub fn with_latency_spikes(mut self, ppm: u32, extra: Dur) -> Self {
        self.slow_ppm = ppm;
        self.slow_extra = extra;
        self
    }

    /// Mark `[slba, slba + nblocks)` as a sticky bad extent: every timed
    /// read overlapping it fails with `MediaError` until rewritten.
    pub fn with_bad_extent(self, slba: u64, nblocks: u64) -> Self {
        self.sticky.lock().push((slba, nblocks));
        self
    }

    /// Mark `[slba, slba + nblocks)` as silently corrupted: reads succeed
    /// but each block returns with one bit flipped (position keyed on the
    /// seed and the absolute block number, so replays and repeated reads
    /// see identical corruption) until rewritten.
    pub fn with_bit_flips(self, slba: u64, nblocks: u64) -> Self {
        self.flips.lock().push((slba, nblocks));
        self
    }

    /// Decide the next command's fate. Deterministic: the n-th call for a
    /// given seed always returns the same outcome.
    pub fn decide(&self, is_write: bool) -> FaultOutcome {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 step keyed on (seed, n).
        let mut z = self.seed ^ n.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let die = (z % 1_000_000) as u32;
        let fail_ppm = if is_write {
            self.write_fail_ppm
        } else {
            self.read_fail_ppm
        };
        let status = if die < fail_ppm {
            CmdStatus::MediaError
        } else {
            CmdStatus::Ok
        };
        // Independent draw for latency spikes (reuse upper bits).
        let die2 = ((z >> 32) % 1_000_000) as u32;
        let extra = if die2 < self.slow_ppm {
            self.slow_extra
        } else {
            Dur::ZERO
        };
        FaultOutcome {
            status,
            extra_latency: extra,
        }
    }

    /// Decide the fate of a command covering `[slba, slba + nblocks)`.
    /// Draws exactly one outcome from the per-command stream (so attaching
    /// extents never perturbs the transient-fault replay), then overrides
    /// reads overlapping a sticky bad extent to `MediaError`.
    pub fn decide_range(&self, is_write: bool, slba: u64, nblocks: u32) -> FaultOutcome {
        let mut out = self.decide(is_write);
        if self.is_dead() {
            out.status = CmdStatus::MediaError;
            return out;
        }
        if !is_write && out.status == CmdStatus::Ok && overlaps(&self.sticky.lock(), slba, nblocks)
        {
            out.status = CmdStatus::MediaError;
        }
        out
    }

    /// Does `[slba, slba + nblocks)` overlap a sticky bad extent? Draw-free
    /// (scrubbers and offline checkers probe without perturbing replay).
    pub fn sticky_probe(&self, slba: u64, nblocks: u32) -> bool {
        overlaps(&self.sticky.lock(), slba, nblocks)
    }

    /// Apply silent corruption to a read of `dst` starting at `slba`: each
    /// whole or partial block overlapping a flip extent gets one bit
    /// flipped at a position derived from (seed, absolute block number).
    /// Draw-free and idempotent per block.
    pub fn corrupt_read(&self, slba: u64, dst: &mut [u8]) {
        let flips = self.flips.lock();
        if flips.is_empty() {
            return;
        }
        let nblocks = dst.len().div_ceil(BLOCK_SIZE as usize) as u32;
        for b in 0..nblocks as u64 {
            let abs = slba + b;
            if !overlaps(&flips, abs, 1) {
                continue;
            }
            // SplitMix64 keyed on (seed, block): stable flip position.
            let mut z = self.seed ^ abs.wrapping_mul(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let start = (b * BLOCK_SIZE) as usize;
            let span = dst.len().min(start + BLOCK_SIZE as usize) - start;
            let byte = start + (z as usize >> 3) % span;
            dst[byte] ^= 1 << (z & 7);
        }
    }

    /// A rewrite of `[slba, slba + nblocks)` heals persistent faults there:
    /// overlapping sticky and flip extents are cleared (split if the write
    /// covers them partially).
    pub fn clear_marks(&self, slba: u64, nblocks: u32) {
        clear_overlap(&mut self.sticky.lock(), slba, nblocks);
        clear_overlap(&mut self.flips.lock(), slba, nblocks);
    }

    /// Any persistent fault (death, sticky, or flip) overlapping the
    /// range? Used by scrub/fsck to locate latent damage without a timed
    /// read. A dead device reports every range faulted.
    pub fn persistent_fault(&self, slba: u64, nblocks: u32) -> bool {
        self.is_dead()
            || overlaps(&self.sticky.lock(), slba, nblocks)
            || overlaps(&self.flips.lock(), slba, nblocks)
    }

    /// Commands decided so far.
    pub fn decisions(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let f = FaultInjector::new(1);
        for _ in 0..1000 {
            assert_eq!(f.decide(false), FaultOutcome::NONE);
        }
    }

    #[test]
    fn failure_rate_is_approximate() {
        let f = FaultInjector::new(2).with_read_failures(50_000); // 5%
        let fails = (0..20_000)
            .filter(|_| f.decide(false).status == CmdStatus::MediaError)
            .count();
        let rate = fails as f64 / 20_000.0;
        assert!((0.04..0.06).contains(&rate), "rate {rate}");
        assert_eq!(f.decisions(), 20_000);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let f = FaultInjector::new(7)
                .with_read_failures(10_000)
                .with_latency_spikes(5_000, Dur::micros(100));
            (0..500).map(|_| f.decide(false)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn read_write_rates_independent() {
        let f = FaultInjector::new(3).with_write_failures(100_000);
        let read_fails = (0..5000)
            .filter(|_| f.decide(false).status == CmdStatus::MediaError)
            .count();
        assert_eq!(read_fails, 0);
        let write_fails = (0..5000)
            .filter(|_| f.decide(true).status == CmdStatus::MediaError)
            .count();
        assert!(write_fails > 300, "{write_fails}");
    }

    #[test]
    fn latency_spikes_apply() {
        let f = FaultInjector::new(4).with_latency_spikes(500_000, Dur::micros(50));
        let spikes = (0..2000)
            .filter(|_| !f.decide(false).extra_latency.is_zero())
            .count();
        assert!((800..1200).contains(&spikes), "{spikes}");
    }

    #[test]
    fn sticky_extent_fails_reads_until_rewritten() {
        let f = FaultInjector::new(5).with_bad_extent(10, 4);
        assert_eq!(f.decide_range(false, 0, 8).status, CmdStatus::Ok);
        assert_eq!(f.decide_range(false, 12, 2).status, CmdStatus::MediaError);
        assert_eq!(f.decide_range(false, 13, 8).status, CmdStatus::MediaError);
        // Writes into the extent are unaffected and heal what they cover.
        assert_eq!(f.decide_range(true, 10, 2).status, CmdStatus::Ok);
        f.clear_marks(10, 2);
        assert_eq!(f.decide_range(false, 10, 2).status, CmdStatus::Ok);
        assert!(f.sticky_probe(12, 1), "uncovered half still bad");
        f.clear_marks(0, 64);
        assert!(!f.sticky_probe(0, 64));
        assert_eq!(f.decide_range(false, 12, 2).status, CmdStatus::Ok);
    }

    #[test]
    fn sticky_overlap_draws_exactly_one_outcome() {
        // decide_range consumes one draw whether or not an extent overlaps,
        // so the transient stream replays identically with extents armed.
        let plain = FaultInjector::new(6).with_read_failures(10_000);
        let marked = FaultInjector::new(6)
            .with_read_failures(10_000)
            .with_bad_extent(1_000_000, 1);
        let a: Vec<_> = (0..500).map(|i| plain.decide_range(false, i, 1)).collect();
        let b: Vec<_> = (0..500).map(|i| marked.decide_range(false, i, 1)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bit_flips_are_stable_and_healed_by_rewrite() {
        let f = FaultInjector::new(7).with_bit_flips(2, 1);
        let clean = vec![0u8; 2 * BLOCK_SIZE as usize];
        let mut a = clean.clone();
        f.corrupt_read(2, &mut a);
        assert_ne!(a, clean, "flip extent must corrupt");
        // Exactly one bit differs, inside the first block (abs block 2).
        let diff: u32 = a
            .iter()
            .zip(&clean)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(&a[BLOCK_SIZE as usize..], &clean[BLOCK_SIZE as usize..]);
        // Same position on every read.
        let mut b = clean.clone();
        f.corrupt_read(2, &mut b);
        assert_eq!(a, b);
        assert!(f.persistent_fault(2, 1));
        f.clear_marks(2, 1);
        let mut c = clean.clone();
        f.corrupt_read(2, &mut c);
        assert_eq!(c, clean, "rewrite heals the flip");
        assert!(!f.persistent_fault(0, 16));
    }

    #[test]
    fn killed_device_fails_everything_until_revived() {
        let f = FaultInjector::new(8);
        assert_eq!(f.decide_range(false, 0, 8).status, CmdStatus::Ok);
        f.kill();
        assert!(f.is_dead());
        assert_eq!(f.decide_range(false, 0, 8).status, CmdStatus::MediaError);
        assert_eq!(f.decide_range(true, 100, 1).status, CmdStatus::MediaError);
        assert!(f.persistent_fault(0, 1), "dead device is all damage");
        f.revive();
        assert!(!f.is_dead());
        assert_eq!(f.decide_range(false, 0, 8).status, CmdStatus::Ok);
        assert_eq!(f.decide_range(true, 100, 1).status, CmdStatus::Ok);
        assert!(!f.persistent_fault(0, 1));
    }

    #[test]
    fn death_consumes_one_draw_like_any_command() {
        // Killing a device must not perturb the transient-fault stream of
        // commands issued around the death window.
        let run = |kill_at: Option<usize>| {
            let f = FaultInjector::new(9).with_read_failures(10_000);
            (0..200)
                .map(|i| {
                    if Some(i) == kill_at {
                        f.kill();
                        f.revive();
                    }
                    f.decide_range(false, i as u64, 1)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(100)));
    }

    #[test]
    fn clear_overlap_splits_ranges() {
        let mut v = vec![(10u64, 10u64)];
        clear_overlap(&mut v, 13, 4);
        assert_eq!(v, vec![(10, 3), (17, 3)]);
        clear_overlap(&mut v, 0, 100);
        assert!(v.is_empty());
    }
}
