//! Deterministic fault injection for simulated devices.
//!
//! Real NVMe devices return command-level media errors and experience
//! latency spikes; the storage systems above them must retry. The injector
//! draws per-command outcomes from a seeded stream, so failing runs replay
//! exactly — a crashing retry path reproduces on every execution.

use std::sync::atomic::{AtomicU64, Ordering};

use simkit::time::Dur;

/// Outcome of one block command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CmdStatus {
    #[default]
    Ok,
    /// Unrecoverable media error for this attempt; the command must be
    /// resubmitted by the initiator.
    MediaError,
    /// The command never reached the target (dropped capsule, crashed or
    /// unreachable node). The initiator observes it only after its I/O
    /// timeout elapses, carried in [`FaultOutcome::extra_latency`].
    TransportError,
}

impl CmdStatus {
    pub fn is_ok(self) -> bool {
        self == CmdStatus::Ok
    }
}

/// Per-command fault decision: (status, extra service latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    pub status: CmdStatus,
    pub extra_latency: Dur,
}

impl FaultOutcome {
    pub const NONE: FaultOutcome = FaultOutcome {
        status: CmdStatus::Ok,
        extra_latency: Dur::ZERO,
    };
}

/// Seeded fault model attached to a device.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    counter: AtomicU64,
    /// Probability of a read media error, in parts per million.
    pub read_fail_ppm: u32,
    /// Probability of a write media error, in parts per million.
    pub write_fail_ppm: u32,
    /// Probability of a latency spike, in parts per million.
    pub slow_ppm: u32,
    /// Added service latency on a spike.
    pub slow_extra: Dur,
}

impl FaultInjector {
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            seed,
            counter: AtomicU64::new(0),
            read_fail_ppm: 0,
            write_fail_ppm: 0,
            slow_ppm: 0,
            slow_extra: Dur::ZERO,
        }
    }

    pub fn with_read_failures(mut self, ppm: u32) -> Self {
        self.read_fail_ppm = ppm;
        self
    }

    pub fn with_write_failures(mut self, ppm: u32) -> Self {
        self.write_fail_ppm = ppm;
        self
    }

    pub fn with_latency_spikes(mut self, ppm: u32, extra: Dur) -> Self {
        self.slow_ppm = ppm;
        self.slow_extra = extra;
        self
    }

    /// Decide the next command's fate. Deterministic: the n-th call for a
    /// given seed always returns the same outcome.
    pub fn decide(&self, is_write: bool) -> FaultOutcome {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 step keyed on (seed, n).
        let mut z = self.seed ^ n.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let die = (z % 1_000_000) as u32;
        let fail_ppm = if is_write {
            self.write_fail_ppm
        } else {
            self.read_fail_ppm
        };
        let status = if die < fail_ppm {
            CmdStatus::MediaError
        } else {
            CmdStatus::Ok
        };
        // Independent draw for latency spikes (reuse upper bits).
        let die2 = ((z >> 32) % 1_000_000) as u32;
        let extra = if die2 < self.slow_ppm {
            self.slow_extra
        } else {
            Dur::ZERO
        };
        FaultOutcome {
            status,
            extra_latency: extra,
        }
    }

    /// Commands decided so far.
    pub fn decisions(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_by_default() {
        let f = FaultInjector::new(1);
        for _ in 0..1000 {
            assert_eq!(f.decide(false), FaultOutcome::NONE);
        }
    }

    #[test]
    fn failure_rate_is_approximate() {
        let f = FaultInjector::new(2).with_read_failures(50_000); // 5%
        let fails = (0..20_000)
            .filter(|_| f.decide(false).status == CmdStatus::MediaError)
            .count();
        let rate = fails as f64 / 20_000.0;
        assert!((0.04..0.06).contains(&rate), "rate {rate}");
        assert_eq!(f.decisions(), 20_000);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let f = FaultInjector::new(7)
                .with_read_failures(10_000)
                .with_latency_spikes(5_000, Dur::micros(100));
            (0..500).map(|_| f.decide(false)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn read_write_rates_independent() {
        let f = FaultInjector::new(3).with_write_failures(100_000);
        let read_fails = (0..5000)
            .filter(|_| f.decide(false).status == CmdStatus::MediaError)
            .count();
        assert_eq!(read_fails, 0);
        let write_fails = (0..5000)
            .filter(|_| f.decide(true).status == CmdStatus::MediaError)
            .count();
        assert!(write_fails > 300, "{write_fails}");
    }

    #[test]
    fn latency_spikes_apply() {
        let f = FaultInjector::new(4).with_latency_spikes(500_000, Dur::micros(50));
        let spikes = (0..2000)
            .filter(|_| !f.decide(false).extra_latency.is_zero())
            .count();
        assert!((800..1200).contains(&spikes), "{spikes}");
    }
}
