//! A 16-node disaggregated cluster: every node runs a training reader and
//! exports its emulated NVMe device over NVMe-oF; DLFS serves all readers
//! from the whole pool. Compares aggregated throughput against the Ext4
//! and Octopus-like baselines on the same dataset.
//!
//! Run with: `cargo run --release --example disaggregated_cluster`

use dlfs_suite as _;

use dlfs::SampleSource;
use simkit::prelude::*;

fn main() {
    let nodes = 16usize;
    let sample_size = 4096u64;
    let per_node = 1000usize;
    let seed = 2019;

    // Same dataset for every system.
    let source = dlfs::SyntheticSource::fixed(seed, nodes * 4000, sample_size);
    println!(
        "cluster: {nodes} nodes, dataset {} x {} = {:.0} MB\n",
        source.count(),
        sample_size,
        (source.count() as u64 * sample_size) as f64 / 1e6
    );

    // NOTE: these helpers live in the benchmark harness crate; the example
    // wires the systems directly to show the public APIs.
    use blocksim::{DeviceConfig, NvmeDevice, NvmeTarget};
    use fabric::{Cluster, FabricConfig, NvmeOfTarget, TargetConfig};
    use std::sync::Arc;

    // ---------------- DLFS over NVMe-oF.
    let (dlfs_rate, _) = Runtime::simulate(seed, |rt| {
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let devices: Vec<Arc<NvmeDevice>> = (0..nodes)
            .map(|_| NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10))))
            .collect();
        let exported: Vec<Arc<NvmeOfTarget>> = devices
            .iter()
            .enumerate()
            .map(|(n, d)| NvmeOfTarget::new(n, d.clone(), TargetConfig::default()))
            .collect();
        let mut targets: Vec<Vec<Arc<dyn NvmeTarget>>> = Vec::new();
        for r in 0..nodes {
            targets.push(
                (0..nodes)
                    .map(|n| {
                        if r == n {
                            devices[n].clone() as Arc<dyn NvmeTarget>
                        } else {
                            fabric::connect(cluster.clone(), r, exported[n].clone())
                        }
                    })
                    .collect(),
            );
        }
        let fs = Arc::new(
            dlfs::MountBuilder::new(dlfs::DlfsConfig::default())
                .deployment(dlfs::Deployment {
                    targets,
                    cluster: Some(cluster),
                })
                .options(dlfs::MountOptions::default())
                .mount(rt, &source)
                .unwrap(),
        );
        // All readers pull their slices concurrently.
        let start = rt.now();
        let handles: Vec<_> = (0..nodes)
            .map(|r| {
                let fs = fs.clone();
                rt.spawn_with(&format!("reader{r}"), move |rt| {
                    let mut io = fs.io(r);
                    io.sequence(rt, seed, 0);
                    let mut got = 0usize;
                    while got < per_node {
                        match io.submit(rt, &dlfs::ReadRequest::batch(32)) {
                            Ok(b) => got += b.len(),
                            Err(_) => break,
                        }
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join()).sum();
        total as f64 / (rt.now() - start).as_secs_f64()
    });

    // ---------------- Ext4 baseline: each node reads its local shard.
    let (ext4_rate, _) = Runtime::simulate(seed, |rt| {
        use kernsim::{Ext4Fs, FsOptions, KernelCosts};
        let start = rt.now();
        let handles: Vec<_> = (0..nodes)
            .map(|r| {
                let source = source.clone();
                rt.spawn_with(&format!("ext4-{r}"), move |rt| {
                    let dev =
                        NvmeDevice::new(DeviceConfig::emulated_ramdisk(256 << 20, Dur::micros(10)));
                    let fs = Ext4Fs::mkfs(dev, KernelCosts::default(), FsOptions::default());
                    let staged = dlio::stage_ext4_untimed(&fs, &source, r, nodes);
                    let mut rng = simkit::rng::SplitMix64::derive(seed, r as u64);
                    let order = rng.permutation(staged.len());
                    let mut buf = vec![0u8; sample_size as usize];
                    for &i in order.iter().take(per_node) {
                        let (_, path) = &staged[i as usize];
                        let fd = fs.open(rt, path).unwrap();
                        fs.pread(rt, fd, 0, &mut buf).unwrap();
                        fs.close(rt, fd).unwrap();
                    }
                    per_node
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join()).sum();
        total as f64 / (rt.now() - start).as_secs_f64()
    });

    // ---------------- Octopus-like baseline.
    let (octo_rate, _) = Runtime::simulate(seed, |rt| {
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let cfg = DeviceConfig::emulated_ramdisk(128 << 20, Dur::micros(10));
        let fs = octofs::OctopusFs::deploy(rt, cluster, &cfg);
        let staged = dlio::stage_octopus(rt, &fs, &source);
        let start = rt.now();
        let handles: Vec<_> = (0..nodes)
            .map(|r| {
                let fs = fs.clone();
                let shard: Vec<String> = staged
                    .iter()
                    .filter(|(id, _)| dlio::shard_of(*id, nodes) == r)
                    .map(|(_, n)| n.clone())
                    .collect();
                rt.spawn_with(&format!("octo-{r}"), move |rt| {
                    let mut buf = vec![0u8; sample_size as usize];
                    for name in shard.iter().take(per_node) {
                        fs.read(rt, r, name, &mut buf).unwrap();
                    }
                    per_node.min(shard.len())
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join()).sum();
        total as f64 / (rt.now() - start).as_secs_f64()
    });

    println!(
        "aggregated random-read throughput ({}B samples):",
        sample_size
    );
    println!("  DLFS    : {:>12.0} samples/s", dlfs_rate);
    println!(
        "  Ext4    : {:>12.0} samples/s   (DLFS is {:.1}x)",
        ext4_rate,
        dlfs_rate / ext4_rate
    );
    println!(
        "  Octopus : {:>12.0} samples/s   (DLFS is {:.1}x)",
        octo_rate,
        dlfs_rate / octo_rate
    );
}
