//! Observability demo: trace the stages of a disaggregated training epoch
//! (mount, sequence, per-batch reads, epoch barrier) on the virtual clock
//! and print the timeline. Traces are deterministic: the same seed prints
//! the same timeline on any machine.
//!
//! Run with: `cargo run --release --example traced_timeline`

use std::sync::Arc;

use dlfs::DlfsConfig;
use simkit::prelude::*;
use simkit::Tracer;

fn main() {
    let tracer = Tracer::new();
    let t = tracer.clone();
    let seed = 7u64;

    Runtime::simulate(seed, move |rt| {
        use blocksim::{DeviceConfig, NvmeDevice, NvmeTarget};
        use fabric::{Cluster, FabricConfig, NvmeOfTarget, TargetConfig};

        let nodes = 4usize;
        let source = dlfs::SyntheticSource::fixed(3, 8_000, 4096);

        t.event(rt, "root", "mount:begin");
        let cluster = Arc::new(Cluster::new(nodes, FabricConfig::default()));
        let devices: Vec<Arc<NvmeDevice>> = (0..nodes)
            .map(|_| NvmeDevice::new(DeviceConfig::emulated_ramdisk(64 << 20, Dur::micros(10))))
            .collect();
        let exported: Vec<_> = devices
            .iter()
            .enumerate()
            .map(|(n, d)| NvmeOfTarget::new(n, d.clone(), TargetConfig::default()))
            .collect();
        let mut targets: Vec<Vec<Arc<dyn NvmeTarget>>> = Vec::new();
        for r in 0..nodes {
            targets.push(
                (0..nodes)
                    .map(|n| {
                        if r == n {
                            devices[n].clone() as Arc<dyn NvmeTarget>
                        } else {
                            fabric::connect(cluster.clone(), r, exported[n].clone())
                        }
                    })
                    .collect(),
            );
        }
        let fs = Arc::new(
            dlfs::MountBuilder::new(DlfsConfig::default())
                .deployment(dlfs::Deployment {
                    targets,
                    cluster: Some(cluster),
                })
                .options(dlfs::MountOptions::default())
                .mount(rt, &source)
                .unwrap(),
        );
        t.event(rt, "root", "mount:end");

        // One training epoch: all readers start together at a barrier and
        // meet again at the end (the collective shape of dlfs_sequence).
        let barrier = Barrier::new(nodes);
        let mut handles = Vec::new();
        for r in 0..nodes {
            let fs = fs.clone();
            let t = t.clone();
            let barrier = barrier.clone();
            handles.push(rt.spawn(&format!("reader{r}"), move |rt| {
                let task = format!("reader{r}");
                let mut io = fs.io(r);
                barrier.wait(rt);
                t.event(rt, &task, "sequence");
                let mine = io.sequence(rt, 99, 0);
                let mut read = 0;
                let mut batch_no = 0;
                while read < mine {
                    let batch = io
                        .submit(rt, &dlfs::ReadRequest::batch(64))
                        .unwrap()
                        .into_copied();
                    read += batch.len();
                    if batch_no % 8 == 0 {
                        t.event(rt, &task, format!("batch {batch_no} ({read}/{mine})"));
                    }
                    batch_no += 1;
                }
                t.event(rt, &task, format!("epoch done: {read} samples"));
                barrier.wait(rt);
            }));
        }
        for h in handles {
            h.join();
        }
        t.event(rt, "root", "all-readers-done");
    });

    // Print an excerpt of the timeline.
    let events = tracer.snapshot();
    println!("{} events traced; timeline:\n", events.len());
    print!("{}", tracer.render());
    let mount = tracer.span("mount:begin", "mount:end").unwrap();
    println!("\nmount took {mount} of virtual time");
}
