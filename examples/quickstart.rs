//! Quickstart: mount DLFS on a local NVMe device, generate a global random
//! sample sequence, and read mini-batches through `submit(ReadRequest)`.
//!
//! Run with: `cargo run --release --example quickstart`

use blocksim::{DeviceConfig, NvmeDevice};
use dlfs::{DlfsConfig, SampleSource, SyntheticSource};
use simkit::prelude::*;

fn main() {
    // Everything timed runs under the deterministic virtual-time runtime:
    // same seed, same results, on any machine.
    let ((), end) = Runtime::simulate(42, |rt| {
        // 1. A simulated Optane-class NVMe SSD.
        let device = NvmeDevice::new(DeviceConfig::optane(256 << 20));

        // 2. A dataset: 20,000 samples of 4 KiB (think small JPEGs).
        let dataset = SyntheticSource::fixed(7, 20_000, 4096);

        // 3. dlfs_mount: stage the dataset onto the device and build the
        //    in-memory sample directory.
        let fs = dlfs::MountBuilder::new(DlfsConfig::default())
            .local(device)
            .mount(rt, &dataset)
            .unwrap();
        println!(
            "mounted: {} samples, directory height {} (virtual time {})",
            fs.dir.len(),
            fs.dir.max_tree_height(),
            rt.now()
        );

        // 4. dlfs_sequence + submit(ReadRequest): mini-batches of random samples.
        let mut io = fs.io(0);
        let total = io.sequence(rt, /*seed=*/ 123, /*epoch=*/ 0);
        println!("epoch plan: {total} samples");

        let t0 = rt.now();
        let mut read = 0usize;
        let mut bytes = 0u64;
        while read < 10_000 {
            let batch = io
                .submit(rt, &dlfs::ReadRequest::batch(32))
                .unwrap()
                .into_copied();
            for (id, data) in &batch {
                // Payloads are verifiable end-to-end.
                assert_eq!(data, &dataset.expected(*id), "sample {id} corrupted");
                bytes += data.len() as u64;
            }
            read += batch.len();
        }
        let dt = (rt.now() - t0).as_secs_f64();
        println!(
            "read {read} samples ({:.1} MB) in {:.2} ms of virtual time",
            bytes as f64 / 1e6,
            dt * 1e3
        );
        println!(
            "=> {:.0} samples/s, {:.2} GB/s",
            read as f64 / dt,
            bytes as f64 / dt / 1e9
        );

        // 5. The POSIX-like path also works: dlfs_open / dlfs_read.
        let name = dataset.name(1234);
        let data = io.read(rt, &name).unwrap();
        println!("dlfs_read({name}): {} bytes", data.len());

        // 6. The epoch's telemetry report: every counter and per-stage
        //    latency histogram, byte-identical for a given seed.
        println!("\n--- telemetry epoch report ---");
        print!("{}", io.metrics().render());
    });
    println!("simulation ended at {end}");
}
