//! The same DLFS code on **real OS threads and the wall clock** instead of
//! the deterministic simulation — `Runtime::real` swaps the substrate, the
//! file-system code is untouched. Useful for interactive poking; all
//! measurements in EXPERIMENTS.md use the simulated runtime.
//!
//! Run with: `cargo run --release --example live_realtime`

use blocksim::{DeviceConfig, NvmeDevice};
use dlfs::{DlfsConfig, SyntheticSource};
use simkit::runtime::Runtime as Rt;

fn main() {
    let rt = Rt::real(7);
    assert!(!rt.is_sim());

    let device = NvmeDevice::new(DeviceConfig::optane(64 << 20));
    let dataset = SyntheticSource::fixed(3, 4_000, 4096);

    let t0 = std::time::Instant::now();
    let fs = dlfs::MountBuilder::new(DlfsConfig::default())
        .local(device)
        .mount(&rt, &dataset)
        .unwrap();
    println!(
        "mounted {} samples in {:.1} ms wall time",
        fs.dir.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mut io = fs.io(0);
    io.sequence(&rt, 99, 0);
    let t0 = std::time::Instant::now();
    let mut read = 0;
    while read < 2_000 {
        let batch = io
            .submit(&rt, &dlfs::ReadRequest::batch(32))
            .unwrap()
            .into_copied();
        for (id, data) in &batch {
            assert_eq!(data, &dataset.expected(*id));
        }
        read += batch.len();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "live mode: read {read} verified samples in {:.1} ms wall time ({:.0} samples/s incl. modelled device delays)",
        dt * 1e3,
        read as f64 / dt
    );
}
