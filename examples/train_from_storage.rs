//! End-to-end training from disaggregated storage: a classifier trains on
//! samples that really travel dataset → NVMe devices → DLFS chunk-batched
//! reads → decode → SGD, with the sample order decided by DLFS (paper
//! §III-D / Fig. 13).
//!
//! Run with: `cargo run --release --example train_from_storage`

use blocksim::{DeviceConfig, NvmeDevice};
use dlfs::{DlfsConfig, SampleSource};
use dnn::{ClassData, Mlp};
use simkit::prelude::*;

/// Wrap a ClassData's encoded records as a DLFS dataset source.
#[derive(Clone)]
struct EncodedDataset {
    records: std::sync::Arc<Vec<Vec<u8>>>,
}

impl SampleSource for EncodedDataset {
    fn count(&self) -> usize {
        self.records.len()
    }
    fn name(&self, id: u32) -> String {
        format!("train_{id:08}")
    }
    fn size(&self, id: u32) -> u64 {
        self.records[id as usize].len() as u64
    }
    fn fill(&self, id: u32, buf: &mut [u8]) {
        buf.copy_from_slice(&self.records[id as usize]);
    }
}

fn main() {
    let seed = 2019u64;
    let features = 32usize;
    let classes = 8usize;
    let epochs = 8usize;

    // Generate and split the dataset, then freeze its byte encoding — this
    // is what lives on the NVMe devices.
    let (train, val) = ClassData::synthetic(seed, 6_000, features, classes, 2.0).split(0.2);
    let records: Vec<Vec<u8>> = (0..train.len()).map(|i| train.encode(i)).collect();
    let dataset = EncodedDataset {
        records: std::sync::Arc::new(records),
    };
    println!(
        "dataset: {} train / {} val samples, {} B records",
        train.len(),
        val.len(),
        train.record_len()
    );

    let (final_acc, _) = Runtime::simulate(seed, |rt| {
        // Stage onto a local NVMe device; chunk-level batching kicks in
        // automatically (records are tiny).
        let device = NvmeDevice::new(DeviceConfig::optane(256 << 20));
        let cfg = DlfsConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        };
        let fs = dlfs::MountBuilder::new(cfg)
            .local(device)
            .mount(rt, &dataset)
            .unwrap();
        let mut io = fs.io(0);

        let mut net = Mlp::new(&[features, 64, classes], seed);
        let (vx, vy) = val.all();

        for epoch in 0..epochs {
            let total = io.sequence(rt, seed, epoch as u64);
            let mut batches = 0usize;
            let mut read = 0usize;
            let mut loss_sum = 0.0f32;
            while read < total {
                let batch = io
                    .submit(rt, &dlfs::ReadRequest::batch(32))
                    .unwrap()
                    .into_copied();
                read += batch.len();
                // Decode the raw bytes into a training batch.
                let mut xs = Vec::with_capacity(batch.len() * features);
                let mut ys = Vec::with_capacity(batch.len());
                for (_id, bytes) in &batch {
                    let (label, feats) = ClassData::decode(bytes, features);
                    ys.push(label);
                    xs.extend_from_slice(&feats);
                }
                let x = dnn::Matrix::from_vec(ys.len(), features, xs);
                loss_sum += net.train_step(&x, &ys, 0.05, 0.9);
                batches += 1;
            }
            let acc = net.accuracy(&vx, &vy);
            println!(
                "epoch {epoch}: read {read} samples from storage, mean loss {:.3}, val acc {:.3} (I/O virtual time so far {})",
                loss_sum / batches as f32,
                acc,
                rt.now()
            );
        }
        net.accuracy(&vx, &vy)
    });
    println!("final validation accuracy (trained entirely from DLFS reads): {final_acc:.3}");
    assert!(final_acc > 0.8, "training should converge");
}
